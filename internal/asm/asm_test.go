package asm

import (
	"testing"

	"repro/internal/vax"
)

func mustAssemble(t *testing.T, src string, origin uint32) *Program {
	t.Helper()
	p, err := Assemble(src, origin)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestSimpleEncodings(t *testing.T) {
	cases := []struct {
		src  string
		want []byte
	}{
		{"nop", []byte{0x01}},
		{"halt", []byte{0x00}},
		{"rei", []byte{0x02}},
		{"movl r0, r1", []byte{0xD0, 0x50, 0x51}},
		{"movl #5, r0", []byte{0xD0, 0x05, 0x50}},
		{"movl #0x100, r0", []byte{0xD0, 0x8F, 0x00, 0x01, 0x00, 0x00, 0x50}},
		{"movl (r2), r3", []byte{0xD0, 0x62, 0x53}},
		{"movl (r2)+, r3", []byte{0xD0, 0x82, 0x53}},
		{"movl -(sp), r3", []byte{0xD0, 0x7E, 0x53}},
		{"movl 4(r2), r3", []byte{0xD0, 0xA2, 0x04, 0x53}},
		{"movl @4(r2), r3", []byte{0xD0, 0xB2, 0x04, 0x53}},
		{"movl @#0x80000000, r1", []byte{0xD0, 0x9F, 0x00, 0x00, 0x00, 0x80, 0x51}},
		{"movl 0x300(r1), r0", []byte{0xD0, 0xC1, 0x00, 0x03, 0x50}},
		{"chmk #3", []byte{0xBC, 0x03}},
		{"mtpr r0, #18", []byte{0xDA, 0x50, 0x12}},
		{"pushl r7", []byte{0xDD, 0x57}},
		{"wait", []byte{0xFD, 0x30}},
		{"probevmr #1, (r0)", []byte{0xFD, 0x31, 0x01, 0x60}},
		{"movb #0x80, r0", []byte{0x90, 0x8F, 0x80, 0x50}},
		{"movw #0x1234, r0", []byte{0xB0, 0x8F, 0x34, 0x12, 0x50}},
	}
	for _, c := range cases {
		p := mustAssemble(t, c.src, 0)
		if len(p.Code) != len(c.want) {
			t.Errorf("%q: code %#v, want %#v", c.src, p.Code, c.want)
			continue
		}
		for i := range c.want {
			if p.Code[i] != c.want[i] {
				t.Errorf("%q: byte %d = %#x, want %#x", c.src, i, p.Code[i], c.want[i])
			}
		}
	}
}

func TestBranchBackwardForward(t *testing.T) {
	p := mustAssemble(t, `
start:	nop
	brb start
	brb fwd
	nop
fwd:	halt
`, 0x1000)
	// start at 0x1000: nop(1), brb start: opcode at 0x1001, disp at
	// 0x1002, next pc 0x1003 -> disp = 0x1000-0x1003 = -3.
	if p.Code[2] != 0xFD {
		t.Errorf("backward disp = %#x, want 0xFD", p.Code[2])
	}
	// brb fwd at 0x1003: disp at 0x1004, nextPC 0x1005; fwd = 0x1006
	// (after the nop at 0x1005) -> disp = 1.
	if p.Code[4] != 0x01 {
		t.Errorf("forward disp = %#x, want 1", p.Code[4])
	}
	if p.MustSymbol("fwd") != 0x1006 {
		t.Errorf("fwd = %#x", p.MustSymbol("fwd"))
	}
}

func TestBranchOutOfRange(t *testing.T) {
	src := "brb far\n.space 300\nfar: halt\n"
	if _, err := Assemble(src, 0); err == nil {
		t.Fatal("expected out-of-range error")
	}
	src = "brw far\n.space 300\nfar: halt\n"
	if _, err := Assemble(src, 0); err != nil {
		t.Fatalf("brw should reach: %v", err)
	}
}

func TestDirectives(t *testing.T) {
	p := mustAssemble(t, `
	.org 0x10
val:	.long 0x11223344, after
	.word 0x5566
	.byte 1, 2
	.ascii "ab"
	.align 4
after:	.space 8
`, 0)
	if p.MustSymbol("val") != 0x10 {
		t.Errorf("val = %#x", p.MustSymbol("val"))
	}
	if p.Code[0x10] != 0x44 || p.Code[0x13] != 0x11 {
		t.Error(".long little-endian encoding wrong")
	}
	after := p.MustSymbol("after")
	if after%4 != 0 {
		t.Error(".align failed")
	}
	// Forward .long fixup.
	got := uint32(p.Code[0x14]) | uint32(p.Code[0x15])<<8 | uint32(p.Code[0x16])<<16 | uint32(p.Code[0x17])<<24
	if got != after {
		t.Errorf(".long forward = %#x, want %#x", got, after)
	}
	if p.Code[0x18] != 0x66 || p.Code[0x19] != 0x55 {
		t.Error(".word encoding wrong")
	}
	if p.Code[0x1C] != 'a' || p.Code[0x1D] != 'b' {
		t.Error(".ascii wrong")
	}
	if p.End() != after+8 {
		t.Errorf("End = %#x", p.End())
	}
}

func TestSymbolsAndExpressions(t *testing.T) {
	p := mustAssemble(t, `
base = 0x200
off = 8
	movl base+off(r1), r0
	movl #base-off, r2
here:	.long .
`, 0)
	// base+off = 0x208 fits in a word displacement.
	if p.Code[1] != 0xC1 {
		t.Errorf("expected word displacement, got %#x", p.Code[1])
	}
	d := uint32(p.Code[2]) | uint32(p.Code[3])<<8
	if d != 0x208 {
		t.Errorf("disp = %#x", d)
	}
	here := p.MustSymbol("here")
	got := uint32(p.Code[here]) | uint32(p.Code[here+1])<<8 | uint32(p.Code[here+2])<<16 | uint32(p.Code[here+3])<<24
	if got != here {
		t.Errorf(". = %#x, want %#x", got, here)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"bogus r0",
		"movl r0",                        // operand count
		"movl #5, #6",                    // immediate as result
		"moval r0, r1",                   // register in address context
		"jmp #5",                         // literal in address context
		".org 0x10\n.org 0x5",            // backwards org
		"dup: nop\ndup: nop",             // duplicate label
		"movl undefinedsym(r0), r0\nnop", // undefined in displacement is a fixup... must resolve
		".align 3",
		".byte undef_fwd", // .byte cannot forward-reference
	}
	for _, src := range bad {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestLabelsOnSameLine(t *testing.T) {
	p := mustAssemble(t, "a: b: nop\nc: halt", 0x100)
	if p.MustSymbol("a") != 0x100 || p.MustSymbol("b") != 0x100 || p.MustSymbol("c") != 0x101 {
		t.Errorf("labels: a=%#x b=%#x c=%#x", p.MustSymbol("a"), p.MustSymbol("b"), p.MustSymbol("c"))
	}
}

func TestComments(t *testing.T) {
	p := mustAssemble(t, "nop ; trailing\n; whole line\n\t.ascii \"a;b\" ; comment after string", 0)
	if len(p.Code) != 4 {
		t.Errorf("code length %d, want 4", len(p.Code))
	}
	if string(p.Code[1:4]) != "a;b" {
		t.Errorf("string with semicolon mangled: %q", p.Code[1:])
	}
}

func TestSymbolAPI(t *testing.T) {
	p := mustAssemble(t, "x: nop", 0x42)
	if v, ok := p.Symbol("x"); !ok || v != 0x42 {
		t.Error("Symbol lookup failed")
	}
	if _, ok := p.Symbol("y"); ok {
		t.Error("undefined symbol reported present")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSymbol should panic on undefined")
		}
	}()
	p.MustSymbol("nope")
}

func TestExtendedOpcodes(t *testing.T) {
	p := mustAssemble(t, "wait\nprobevmw #3, (r1)", 0)
	if p.Code[0] != vax.ExtPrefix || p.Code[1] != byte(vax.OpWAIT&0xFF) {
		t.Error("WAIT encoding wrong")
	}
	if p.Code[2] != vax.ExtPrefix || p.Code[3] != byte(vax.OpPROBEVMW&0xFF) {
		t.Error("PROBEVMW encoding wrong")
	}
}

func TestNegativeDisplacement(t *testing.T) {
	p := mustAssemble(t, "movl -4(fp), r0", 0)
	if p.Code[1] != 0xAD || p.Code[2] != 0xFC {
		t.Errorf("encoding: %#v", p.Code)
	}
}

func TestZeroDisplacementParens(t *testing.T) {
	// "0(r1)" is displacement mode; "(r1)" is register deferred.
	p := mustAssemble(t, "movl 0(r1), r0", 0)
	if p.Code[1] != 0xA1 || p.Code[2] != 0 {
		t.Errorf("encoding: %#v", p.Code)
	}
}
