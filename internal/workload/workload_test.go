package workload

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/vmos"
)

// Every generator must produce assemblable user code (the behavioural
// assertions live in the vmos and exp test suites, which actually run
// these programs on the simulated machines).
func TestGeneratorsAssemble(t *testing.T) {
	procs := map[string]vmos.Process{
		"compute":    Compute(10),
		"syscall":    Syscall(10),
		"movpsl":     MOVPSLLoop(10),
		"probe":      ProbeLoop(10),
		"edit":       Edit(3),
		"tp":         TP(2, 4),
		"pagestress": PageStress(2, true),
		"pagesparse": PageSparse(2),
		"diskbound":  DiskBound(3, 4),
		"readthendw": ReadThenDiskWrite(8),
		"callheavy":  CallHeavy(2, 5),
	}
	for name, p := range procs {
		prog, err := asm.Assemble(p.Source, 0)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(prog.Code) == 0 {
			t.Errorf("%s: empty program", name)
		}
		if uint32(len(prog.Code)) > vmos.UserCodePages*512 {
			t.Errorf("%s: %d bytes exceeds the user code window", name, len(prog.Code))
		}
	}
}

func TestKernelPreludesAssembleInKernel(t *testing.T) {
	for name, prelude := range map[string]string{
		"ipl":    KernelIPL(5),
		"nop":    KernelNop(5),
		"movpsl": KernelMOVPSL(5),
	} {
		if _, err := vmos.Build(vmos.Config{KernelPrelude: prelude, NoClock: true}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMixShape(t *testing.T) {
	procs := Mix(5, 3, 8)
	if len(procs) != 4 {
		t.Fatalf("Mix has %d processes", len(procs))
	}
	for i, p := range procs {
		if p.Source == "" {
			t.Errorf("process %d empty", i)
		}
	}
}
