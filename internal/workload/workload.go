// Package workload provides the guest programs driving the evaluation:
// the interactive-editing and transaction-processing mix of Section 7.3,
// plus targeted microworkloads for each architectural path (system
// calls, MTPR-to-IPL, MOVPSL, PROBE, demand paging, context switching,
// disk I/O).
//
// User programs run as MiniOS processes (assembled at P0 address 0,
// data at vmos.UserDataVA, stack below vmos.UserStackTop) and must
// preserve their state only in r1-r5/r11 and memory: r0 and r6-r10 are
// clobbered by system calls and preemption.
package workload

import (
	"fmt"

	"repro/internal/vmos"
)

// Compute is a pure user-mode integer workload: no sensitive
// instructions at all, so it must run at native speed inside a VM (the
// efficiency property, paper Section 2).
func Compute(iters int) vmos.Process {
	return vmos.Process{Source: fmt.Sprintf(`
	movl #%d, r11
	clrl r2
	movl #7, r3
loop:	addl2 r3, r2
	mull3 r2, #3, r4
	xorl2 r4, r2
	ashl #1, r2, r2
	sobgtr r11, loop
	movl r2, @#%#x       ; publish the result
	chmk #0
`, iters, vmos.UserDataVA)}
}

// Syscall issues getpid system calls in a tight loop: the CHM/REI round
// trip is the measured path.
func Syscall(iters int) vmos.Process {
	return vmos.Process{Source: fmt.Sprintf(`
	movl #%d, r11
loop:	chmk #%d
	sobgtr r11, loop
	chmk #0
`, iters, vmos.SysGetPid)}
}

// MOVPSLLoop reads the PSL repeatedly: sensitive but never trapping on
// the modified VAX (microcode merge, Section 4.2.1).
func MOVPSLLoop(iters int) vmos.Process {
	return vmos.Process{Source: fmt.Sprintf(`
	movl #%d, r11
loop:	movpsl r2
	sobgtr r11, loop
	movl r2, @#%#x
	chmk #0
`, iters, vmos.UserDataVA)}
}

// ProbeLoop probes the accessibility of the process's own buffer: PROBE
// completes in microcode whenever the shadow PTE is valid
// (Section 4.3.2).
func ProbeLoop(iters int) vmos.Process {
	return vmos.Process{Source: fmt.Sprintf(`
	movl #%d, r11
	movl #1, @#%#x       ; touch the buffer so its PTE is live
loop:	prober #3, #64, @#%#x
	sobgtr r11, loop
	chmk #0
`, iters, vmos.UserDataVA, vmos.UserDataVA)}
}

// Edit models the interactive-editing half of the Section 7.3 mix:
// string manipulation with the VAX character instructions (fill a line,
// MOVC3 it into the file buffer, CMPC3 to verify) punctuated by console
// echo and yields — user-mode work with a moderate syscall rate.
func Edit(iters int) vmos.Process {
	return vmos.Process{Source: fmt.Sprintf(`
line = %#x
file = %#x
	movl #%d, r11
outer:	movl #line, r2       ; compose a line of text
	movl #150, r3
fill:	movb r3, (r2)+
	sobgtr r3, fill
	movc3 #150, @#line, @#file   ; "save" it into the buffer
	movc3 #150, @#file, @#file+512 ; and into the undo buffer
	cmpc3 #150, @#line, @#file   ; verify the save
	bneq corrupt
	movl #40, r3         ; re-justify part of the line
just:	movzbl @#line, r4
	mcomb r4, r5
	sobgtr r3, just
	movl #46, r1         ; '.'
	chmk #%d             ; echo progress
	chmk #%d             ; give up the keyboard (yield)
	sobgtr r11, outer
	chmk #0
corrupt:
	movl #33, r1         ; '!'
	chmk #%d
	chmk #0
`, vmos.UserDataVA, vmos.UserDataVA+1024, iters,
		vmos.SysPutc, vmos.SysYield, vmos.SysPutc)}
}

// TP models the transaction-processing half of the mix: read a record
// from disk, update it in memory, write it back, log, yield.
func TP(txns, blocks int) vmos.Process {
	return vmos.Process{Source: fmt.Sprintf(`
	movl #%d, r11
	clrl r5              ; block cursor
txn:	movl r5, r1          ; block number
	movl #%#x, r2        ; record buffer
	chmk #%d             ; disk read
	movl #%#x, r2
	movl #16, r3
upd:	incl (r2)+           ; update 16 fields
	sobgtr r3, upd
	movl r5, r1
	movl #%#x, r2
	chmk #%d             ; disk write
	movl #42, r1
	chmk #%d             ; commit log mark
	chmk #%d             ; yield
	incl r5
	cmpl r5, #%d
	blss nowrap
	clrl r5
nowrap:	sobgtr r11, txn
	chmk #0
`, txns, vmos.UserDataVA, vmos.SysDiskRead, vmos.UserDataVA,
		vmos.UserDataVA, vmos.SysDiskWrite, vmos.SysPutc, vmos.SysYield, blocks)}
}

// PageStress touches pages across the data region round after round
// with yields in between — the workload behind the shadow-table
// measurements (Sections 4.3.1 and 7.2). With DemandPaging set the
// first round also exercises the VMOS's own page-fault path.
func PageStress(rounds int, demand bool) vmos.Process {
	return vmos.Process{
		DemandPaging: demand,
		Source: fmt.Sprintf(`
	movl #%d, r11
round:	movl #%#x, r2        ; data base
	movl #%d, r3         ; pages
touch:	incl (r2)            ; write one long per page
	addl2 #512, r2
	sobgtr r3, touch
	chmk #%d             ; yield: context switch
	sobgtr r11, round
	chmk #0
`, rounds, vmos.UserDataVA, vmos.UserDataPages, vmos.SysYield),
	}
}

// PageSparse touches every fourth page of the data region, then
// yields: the access pattern for which prefetching shadow PTE groups
// fills mostly-unused entries (Section 4.3.1: "many of which were not
// used before the next context switch").
func PageSparse(rounds int) vmos.Process {
	return vmos.Process{Source: fmt.Sprintf(`
	movl #%d, r11
round:	movl #%#x, r2
	movl #%d, r3         ; touches per round
touch:	incl (r2)
	addl2 #2048, r2      ; stride 4 pages
	sobgtr r3, touch
	chmk #%d             ; yield
	sobgtr r11, round
	chmk #0
`, rounds, vmos.UserDataVA, vmos.UserDataPages/4, vmos.SysYield)}
}

// KernelNop is a kernel prelude with the same loop skeleton as
// KernelIPL but no privileged work — the calibration baseline for E4.
func KernelNop(iters int) string {
	return fmt.Sprintf(`
	movl #%d, r11
nploop:	nop
	nop
	sobgtr r11, nploop
`, iters)
}

// KernelIPL is a kernel prelude running the MTPR-to-IPL loop of
// Section 7.3 ("VMS changes interrupt priority levels frequently").
func KernelIPL(iters int) string {
	return fmt.Sprintf(`
	movl #%d, r11
iploop:	mtpr #8, #18
	mtpr #0, #18
	sobgtr r11, iploop
`, iters)
}

// KernelMOVPSL is a kernel prelude of bare MOVPSL reads.
func KernelMOVPSL(iters int) string {
	return fmt.Sprintf(`
	movl #%d, r11
mploop:	movpsl r2
	sobgtr r11, mploop
`, iters)
}

// ReadThenDiskWrite first reads every data page (warming translations
// without writing) and then disk-reads a record into each — so the
// kernel PROBEWs pages whose first write has not happened yet. This is
// the access pattern that separates the modify fault from the rejected
// read-only-shadow design (Section 4.4.2): the read-only shadow makes
// each of those PROBEWs trap.
func ReadThenDiskWrite(blocks int) vmos.Process {
	pages := vmos.UserDataPages
	if blocks < pages {
		pages = blocks
	}
	return vmos.Process{Source: fmt.Sprintf(`
	movl #%#x, r2        ; phase 1: read every data page
	movl #%d, r3
warm:	movzbl (r2), r4
	addl2 #512, r2
	sobgtr r3, warm
	clrl r5              ; phase 2: disk-read into each page
io:	movl r5, r1          ; block = page index
	ashl #9, r5, r2
	addl2 #%#x, r2       ; buffer = data + page*512
	chmk #%d
	aoblss #%d, r5, io
	chmk #0
`, vmos.UserDataVA, vmos.UserDataPages,
		vmos.UserDataVA, vmos.SysDiskRead, pages)}
}

// CallHeavy computes factorials with the VAX procedure call standard:
// CALLS frames grow down the user stack (in the P1 control region), so
// the workload exercises P1 translation, the P1 shadow table and
// CALLS/RET in user mode.
func CallHeavy(iters, depth int) vmos.Process {
	return vmos.Process{Source: fmt.Sprintf(`
	movl #%d, r11
outer:	pushl #%d
	calls #1, fact
	movl r0, @#%#x       ; publish depth!
	sobgtr r11, outer
	chmk #0

	.align 4
fact:	.word 0x0004         ; save r2
	movl 4(ap), r2
	cmpl r2, #1
	bgtr recurse
	movl #1, r0
	ret
recurse:
	subl3 #1, r2, r0
	pushl r0
	calls #1, fact
	mull2 r2, r0
	ret
`, iters, depth, vmos.UserDataVA)}
}

// DiskBound performs back-to-back disk reads with no think time: the
// workload for the I/O-virtualization comparison (Section 4.4.3).
func DiskBound(ops, blocks int) vmos.Process {
	return vmos.Process{Source: fmt.Sprintf(`
	movl #%d, r11
	clrl r5
io:	movl r5, r1
	movl #%#x, r2
	chmk #%d
	incl r5
	cmpl r5, #%d
	blss ok
	clrl r5
ok:	sobgtr r11, io
	chmk #0
`, ops, vmos.UserDataVA, vmos.SysDiskRead, blocks)}
}

// Mix assembles the Section 7.3 benchmark set: a mix of interactive
// editing and transaction processing.
func Mix(editIters, txns, diskBlocks int) []vmos.Process {
	return []vmos.Process{
		Edit(editIters),
		TP(txns, diskBlocks),
		Edit(editIters),
		TP(txns, diskBlocks),
	}
}
