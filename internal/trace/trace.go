// Package trace collects and formats the event counters scattered
// through the simulator (CPU, MMU, VMM, per-VM) into uniform snapshots,
// so harness code can diff two points in a run and render counter
// tables without reaching into each subsystem's Stats struct.
//
// Concurrency contract: the Stats structs are plain counters, kept
// race-free by goroutine confinement rather than atomics — the hot
// interpreter path must not pay for synchronized increments. Under the
// serial engine one goroutine owns everything and Capture* may be
// called at any point the machine is not inside Run. Under the parallel
// engine each VM's counters are owned by its worker's shard and merged
// back when RunParallel returns; take snapshots strictly before Run is
// entered or after it returns, never from another goroutine while a
// parallel run is in flight. CaptureParallel reads the merged result of
// the last parallel run and is always safe after Run returns.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mmu"
)

// Snapshot is a named set of counters at one instant.
type Snapshot struct {
	Name     string
	Counters map[string]uint64
}

// CaptureCPU snapshots a processor's counters.
func CaptureCPU(c *cpu.CPU) Snapshot {
	s := c.Stats
	return Snapshot{Name: "cpu", Counters: map[string]uint64{
		"cycles":       c.Cycles,
		"instructions": s.Instructions,
		"exceptions":   s.Exceptions,
		"interrupts":   s.Interrupts,
		"vm_traps":     s.VMTraps,
		"priv_traps":   s.PrivTraps,
		"chm":          s.CHMs,
		"rei":          s.REIs,
		"movpsl":       s.MOVPSLs,
		"probe":        s.Probes,

		"decode_hits":          s.DecodeHits,
		"decode_misses":        s.DecodeMisses,
		"decode_invalidations": s.DecodeInvalidations,
	}}
}

// CaptureMMU snapshots memory-management counters.
func CaptureMMU(u *mmu.MMU) Snapshot {
	s := u.Stats
	return Snapshot{Name: "mmu", Counters: map[string]uint64{
		"translations":  s.Translations,
		"tlb_hits":      s.TLBHits,
		"tlb_misses":    s.TLBMisses,
		"tnv_faults":    s.TNVFaults,
		"prot_faults":   s.ProtFaults,
		"modify_faults": s.ModifyFaults,
		"m_sets":        s.MSets,

		"fast_translations": s.FastTranslations,
	}}
}

// CaptureVMM snapshots monitor-level counters.
func CaptureVMM(k *core.VMM) Snapshot {
	s := k.Stats
	return Snapshot{Name: "vmm", Counters: map[string]uint64{
		"entries":          s.VMMEntries,
		"world_switches":   s.WorldSwitches,
		"virtual_irqs":     s.VirtualIRQs,
		"clock_ticks":      s.ClockTicks,
		"deliveries":       s.ReflectedTraps,
		"shadow_pool_hits": s.ShadowPoolHits,
		"shadow_pool_miss": s.ShadowPoolMisses,
	}}
}

// CaptureParallel snapshots the merged totals of the most recent
// parallel-engine run (all zeros when every run so far was serial).
func CaptureParallel(k *core.VMM) Snapshot {
	pr := k.LastParallelRun()
	return Snapshot{Name: "parallel", Counters: map[string]uint64{
		"workers":          uint64(pr.Workers),
		"vms":              uint64(pr.VMs),
		"steps":            pr.Steps,
		"instructions":     pr.Instrs,
		"cycles":           pr.Cycles,
		"fill_batches":     pr.FillBatches,
		"batch_fills":      pr.BatchFills,
		"slow_path_allocs": pr.SlowPathAllocs,
		"shadow_pool_hits": pr.ShadowPoolHits,
		"shadow_pool_miss": pr.ShadowPoolMisses,
	}}
}

// CaptureVM snapshots one virtual machine's counters.
func CaptureVM(vm *core.VM) Snapshot {
	s := vm.Stats
	return Snapshot{Name: vm.Name, Counters: map[string]uint64{
		"vm_traps":         s.VMTraps,
		"chm":              s.CHMs,
		"rei":              s.REIs,
		"mtpr_ipl":         s.MTPRIPL,
		"mtpr_other":       s.MTPROther,
		"mfpr":             s.MFPRs,
		"context_switches": s.ContextSwitches,
		"shadow_fills":     s.ShadowFills,
		"prefetch_fills":   s.PrefetchFills,
		"fill_batches":     s.FillBatches,
		"batch_fills":      s.BatchFills,
		"slow_path_allocs": s.SlowPathAllocs,
		"shadow_clears":    s.ShadowClears,
		"cache_hits":       s.CacheHits,
		"cache_misses":     s.CacheMisses,
		"modify_faults":    s.ModifyFaults,
		"reflected":        s.ReflectedFaults,
		"virtual_irqs":     s.VirtualIRQs,
		"kcalls":           s.KCALLs,
		"mmio_emuls":       s.MMIOEmuls,
		"waits":            s.Waits,
		"probe_fills":      s.ProbeFills,

		"machine_checks":    s.MachineChecks,
		"disk_retries":      s.DiskRetries,
		"watchdog_trips":    s.WatchdogTrips,
		"selfcheck_repairs": s.SelfCheckRepairs,
		"unknown_kcalls":    s.UnknownKCALLs,
	}}
}

// Delta returns after minus before, counter by counter (counters absent
// from before count from zero).
func Delta(before, after Snapshot) Snapshot {
	out := Snapshot{Name: after.Name, Counters: make(map[string]uint64, len(after.Counters))}
	for k, v := range after.Counters {
		out.Counters[k] = v - before.Counters[k]
	}
	return out
}

// NonZero returns a copy holding only counters with non-zero values.
func (s Snapshot) NonZero() Snapshot {
	out := Snapshot{Name: s.Name, Counters: make(map[string]uint64)}
	for k, v := range s.Counters {
		if v != 0 {
			out.Counters[k] = v
		}
	}
	return out
}

// Get returns a counter value (0 if absent).
func (s Snapshot) Get(name string) uint64 { return s.Counters[name] }

// Format renders the snapshot as aligned "name value" lines, sorted.
func (s Snapshot) Format() string {
	keys := make([]string, 0, len(s.Counters))
	width := 0
	for k := range s.Counters {
		keys = append(keys, k)
		if len(k) > width {
			width = len(k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]\n", s.Name)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-*s %d\n", width, k, s.Counters[k])
	}
	return b.String()
}

// Table renders several snapshots side by side: one row per counter
// name, one column per snapshot — the layout used for scheme and
// configuration comparisons.
func Table(snaps ...Snapshot) string {
	names := map[string]bool{}
	for _, s := range snaps {
		for k := range s.Counters {
			names[k] = true
		}
	}
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "counter")
	for _, s := range snaps {
		fmt.Fprintf(&b, "%14s", s.Name)
	}
	b.WriteByte('\n')
	for _, k := range keys {
		fmt.Fprintf(&b, "%-18s", k)
		for _, s := range snaps {
			fmt.Fprintf(&b, "%14d", s.Counters[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
