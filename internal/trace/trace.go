// Package trace is the simulator's observability layer: uniform
// counter snapshots over any Source, a per-VM flight recorder of typed
// events with cycle timestamps, power-of-two latency histograms, and
// Prometheus/JSON renderers for all of it. It is a leaf package — the
// subsystems it observes (CPU, MMU, VMM, per-VM state) import it, not
// the other way round — so anything implementing Source plugs in.
//
// Concurrency contract: the Stats structs behind each Source are plain
// counters, kept race-free by goroutine confinement rather than
// atomics — the hot interpreter path must not pay for synchronized
// increments. Under the serial engine one goroutine owns everything
// and Capture may be called at any point the machine is not inside
// Run. Under the parallel engine each VM's counters are owned by its
// worker's shard and merged back when RunParallel returns; take
// snapshots strictly before Run is entered or after it returns, never
// from another goroutine while a parallel run is in flight.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Source is anything that can be snapshotted: it has a name and emits
// its counters one at a time. CPU, MMU, the VMM, each VM, and the
// merged parallel-run totals all implement it.
type Source interface {
	Name() string
	Counters(emit func(name string, v uint64))
}

// Snapshot is a named set of counters at one instant.
type Snapshot struct {
	Name     string            `json:"name"`
	Counters map[string]uint64 `json:"counters"`
}

// Capture snapshots any Source's counters.
func Capture(src Source) Snapshot {
	s := Snapshot{Name: src.Name(), Counters: make(map[string]uint64, 32)}
	src.Counters(func(name string, v uint64) { s.Counters[name] = v })
	return s
}

// CaptureAll snapshots several sources in order.
func CaptureAll(srcs ...Source) []Snapshot {
	out := make([]Snapshot, len(srcs))
	for i, src := range srcs {
		out[i] = Capture(src)
	}
	return out
}

// Delta returns after minus before, counter by counter (counters absent
// from before count from zero).
func Delta(before, after Snapshot) Snapshot {
	out := Snapshot{Name: after.Name, Counters: make(map[string]uint64, len(after.Counters))}
	for k, v := range after.Counters {
		out.Counters[k] = v - before.Counters[k]
	}
	return out
}

// NonZero returns a copy holding only counters with non-zero values.
func (s Snapshot) NonZero() Snapshot {
	out := Snapshot{Name: s.Name, Counters: make(map[string]uint64)}
	for k, v := range s.Counters {
		if v != 0 {
			out.Counters[k] = v
		}
	}
	return out
}

// Get returns a counter value (0 if absent).
func (s Snapshot) Get(name string) uint64 { return s.Counters[name] }

// Format renders the snapshot as aligned "name value" lines, sorted.
func (s Snapshot) Format() string {
	keys := make([]string, 0, len(s.Counters))
	width := 0
	for k := range s.Counters {
		keys = append(keys, k)
		if len(k) > width {
			width = len(k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]\n", s.Name)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-*s %d\n", width, k, s.Counters[k])
	}
	return b.String()
}

// Table renders several snapshots side by side: one row per counter
// name, one column per snapshot — the layout used for scheme and
// configuration comparisons.
func Table(snaps ...Snapshot) string {
	names := map[string]bool{}
	for _, s := range snaps {
		for k := range s.Counters {
			names[k] = true
		}
	}
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "counter")
	for _, s := range snaps {
		fmt.Fprintf(&b, "%14s", s.Name)
	}
	b.WriteByte('\n')
	for _, k := range keys {
		fmt.Fprintf(&b, "%-18s", k)
		for _, s := range snaps {
			fmt.Fprintf(&b, "%14d", s.Counters[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
