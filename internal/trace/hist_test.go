package trace

import "testing"

func TestHistBucketBoundaries(t *testing.T) {
	var h Hist
	// bucket 0 holds the value 0; bucket i>0 holds [2^(i-1), 2^i).
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1 << 20, 21},
		{^uint64(0), 64},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	if h.Count != uint64(len(cases)) {
		t.Fatalf("Count = %d", h.Count)
	}
	counts := map[int]uint64{}
	for _, c := range cases {
		counts[c.bucket]++
	}
	for b, want := range counts {
		if h.Buckets[b] != want {
			t.Errorf("bucket %d = %d, want %d", b, h.Buckets[b], want)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	// Cumulative counts: bucket1..6 hold 1,2,4,8,16,32 values (through
	// 63, cum 63); bucket 7 holds 64..100 (cum 100). Quantiles report
	// the containing bucket's upper bound.
	if got := h.Quantile(0.50); got != 63 {
		t.Errorf("p50 = %d, want 63", got)
	}
	if got := h.Quantile(0.99); got != 127 {
		t.Errorf("p99 = %d, want 127", got)
	}
	if got := h.Quantile(1.0); got != 127 {
		t.Errorf("p100 = %d, want 127", got)
	}
	if got := h.Quantile(0.01); got != 1 {
		t.Errorf("p1 = %d, want 1", got)
	}
}

func TestHistEmptyAndClamp(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(5)
	if h.Quantile(-1) != h.Quantile(0.001) {
		t.Error("q<0 must clamp")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q>1 must clamp")
	}
}

func TestHistAddAndMean(t *testing.T) {
	var a, b Hist
	a.Observe(2)
	a.Observe(4)
	b.Observe(6)
	a.Add(&b)
	if a.Count != 3 || a.Sum != 12 {
		t.Fatalf("merged Count %d Sum %d", a.Count, a.Sum)
	}
	if a.Mean() != 4 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Buckets[3] != 2 { // 4 and 6 both land in [4,8)
		t.Fatalf("bucket 3 = %d", a.Buckets[3])
	}
}
