package trace

import (
	"strings"
	"testing"
)

func TestRecorderRecordSyncEvents(t *testing.T) {
	r := NewRecorder(16)
	v := r.VM(0, "vm0")
	if r.VM(0, "other") != v {
		t.Fatal("VM() must be idempotent per ID")
	}
	for i := uint32(0); i < 5; i++ {
		v.Record(EvVMTrap, uint64(100+i), i)
	}
	evs := v.Events(0)
	if len(evs) != 5 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Kind != EvVMTrap || evs[0].Cycle != 100 || evs[0].Arg != 0 || evs[0].VM != 0 {
		t.Fatalf("first event %+v", evs[0])
	}
	if evs[4].Cycle != 104 {
		t.Fatalf("events out of order: %+v", evs)
	}
	if got := v.Events(2); len(got) != 2 || got[1].Cycle != 104 {
		t.Fatalf("Events(2) = %+v", got)
	}
}

func TestRecorderDropAccounting(t *testing.T) {
	r := NewRecorder(4)
	v := r.VM(3, "vm3")
	for i := 0; i < 10; i++ {
		v.Record(EvShadowFill, uint64(i), 0)
	}
	if v.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", v.Dropped())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Recorder.Dropped = %d, want 6", r.Dropped())
	}
	r.Sync()
	// After a sync the ring has room again; history keeps the newest.
	v.Record(EvShadowFill, 99, 0)
	if evs := v.Events(0); evs[len(evs)-1].Cycle != 99 {
		t.Fatalf("post-sync event missing: %+v", evs)
	}
}

func TestRecorderObserveHist(t *testing.T) {
	r := NewRecorder(8)
	v := r.VM(0, "vm0")
	v.Observe(LatTrap, 10)
	v.Observe(LatTrap, 20)
	v.Observe(LatKCall, 100)
	if v.Hist(LatTrap).Count != 2 || v.Hist(LatKCall).Count != 1 {
		t.Fatal("Observe routed to wrong histogram")
	}
	if v.Hist(LatShadowFill).Count != 0 {
		t.Fatal("untouched histogram must stay empty")
	}
	tbl := HistTable(r)
	for _, want := range []string{"trap", "kcall", "p99"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("HistTable missing %q:\n%s", want, tbl)
		}
	}
}

func TestKindAndLatStrings(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if strings.Contains(k.String(), "event(") {
			t.Errorf("Kind %d lacks a name", k)
		}
	}
	for l := Lat(0); l < NumLat; l++ {
		if strings.Contains(l.String(), "lat(") {
			t.Errorf("Lat %d lacks a name", l)
		}
	}
	if EvVMTrap.String() != "vm-trap" || LatShadowFill.String() != "shadow_fill" {
		t.Error("canonical names changed")
	}
}

func TestFormatEventsAndDisabled(t *testing.T) {
	if !strings.Contains(FormatEvents(nil, 0), "disabled") {
		t.Error("nil recorder must render as disabled")
	}
	if !strings.Contains(HistTable(nil), "disabled") {
		t.Error("nil recorder must render as disabled")
	}
	r := NewRecorder(8)
	v := r.VM(1, "guest")
	v.Record(EvKCallStart, 5, 2)
	out := FormatEvents(r, 0)
	for _, want := range []string{"guest", "kcall-start", "vm1"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatEvents missing %q:\n%s", want, out)
		}
	}
}
