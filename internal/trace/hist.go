package trace

import "math/bits"

// Latency histograms with power-of-two buckets: bucket i counts values
// v with bits.Len64(v) == i, i.e. bucket 0 holds the value 0 and
// bucket i>0 holds [2^(i-1), 2^i). Observe is two increments and a
// bit-length — cheap enough for every VMM slow-path event — and
// quantile extraction reports the upper bound of the bucket holding
// the requested rank, so a reported p99 is a guaranteed ceiling.

// HistBuckets is one bucket per possible uint64 bit length, plus the
// zero bucket.
const HistBuckets = 65

// Hist is a power-of-two-bucket histogram. The zero value is ready to
// use; it is owned by one goroutine at a time (the recording producer
// during a run, the reader after the merge barrier).
type Hist struct {
	Count   uint64
	Sum     uint64
	Buckets [HistBuckets]uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(v)]++
}

// Add folds o into h (merging shard histograms at a barrier).
func (h *Hist) Add(o *Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// bucketMax is the largest value bucket i can hold.
func bucketMax(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile returns an upper bound for the q-th quantile (0 < q <= 1):
// the maximum value of the bucket containing that rank. Returns 0 when
// the histogram is empty.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen >= rank {
			return bucketMax(i)
		}
	}
	return bucketMax(HistBuckets - 1)
}

// Mean returns the arithmetic mean of the observed values.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}
