package trace

import (
	"sync"
	"testing"
)

func TestSPSCOrderingAndDrop(t *testing.T) {
	r := NewSPSC[int](8)
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	if r.Dropped() != 92 {
		t.Fatalf("Dropped = %d, want 92", r.Dropped())
	}
	var got []int
	r.Drain(func(v int) { got = append(got, v) })
	// Drop-newest semantics: a full ring rejects the push, so the first
	// eight values survive in order.
	for i, v := range got {
		if v != i {
			t.Fatalf("drained[%d] = %d, want %d", i, v, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
}

func TestSPSCDrainRefill(t *testing.T) {
	r := NewSPSC[int](4)
	next := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push(next + i) {
				t.Fatalf("push rejected with space free (round %d)", round)
			}
		}
		r.Drain(func(v int) {
			if v != next {
				t.Fatalf("drained %d, want %d", v, next)
			}
			next++
		})
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
}

// Producer and drainer on separate goroutines: every value arrives
// exactly once and in order, or is accounted in Dropped. Run under
// -race this also proves the SPSC contract holds.
func TestSPSCConcurrent(t *testing.T) {
	const n = 10000
	r := NewSPSC[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			r.Push(i)
		}
	}()
	var got []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for {
		r.Drain(func(v int) { got = append(got, v) })
		select {
		case <-done:
			r.Drain(func(v int) { got = append(got, v) })
			if uint64(len(got))+r.Dropped() != n {
				t.Fatalf("received %d + dropped %d != %d", len(got), r.Dropped(), n)
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("out of order: got[%d]=%d after %d", i, got[i], got[i-1])
				}
			}
			return
		default:
		}
	}
}

func TestLastOverwriteOldest(t *testing.T) {
	l := NewLast[int](4)
	if l.Len() != 0 || l.Cap() != 4 {
		t.Fatalf("fresh Last: Len %d Cap %d", l.Len(), l.Cap())
	}
	l.Append(1)
	l.Append(2)
	if s := l.Snapshot(); len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Fatalf("partial snapshot %v", s)
	}
	for i := 3; i <= 10; i++ {
		l.Append(i)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	s := l.Snapshot()
	want := []int{7, 8, 9, 10}
	for i, v := range want {
		if s[i] != v {
			t.Fatalf("snapshot %v, want %v", s, want)
		}
	}
}
