package trace

import "sync/atomic"

// The two ring shapes every recorder in the tree builds on. SPSC is
// the lock-free single-producer ring the audit facility introduced for
// parallel runs and the flight recorder now shares; Last is the
// bounded overwrite-oldest log used wherever "keep the most recent N"
// is the retention policy (the audit trail, the flight recorder's
// retained history).

// SPSC is a bounded lock-free single-producer single-consumer ring:
// one goroutine pushes, one drains. The producer drops (and counts)
// entries rather than overwrite a slot the drainer has not consumed,
// so Push and Drain never touch the same element — loss is accounted,
// never silent, and neither side ever blocks.
type SPSC[T any] struct {
	buf     []T
	head    atomic.Uint64 // next write, producer-owned
	tail    atomic.Uint64 // next read, drainer-owned
	dropped atomic.Uint64
}

// NewSPSC builds a ring holding up to n entries (minimum 1).
func NewSPSC[T any](n int) *SPSC[T] {
	if n < 1 {
		n = 1
	}
	return &SPSC[T]{buf: make([]T, n)}
}

// Push appends v, or drops it (counting the loss) when the ring is
// full. Producer goroutine only.
func (r *SPSC[T]) Push(v T) bool {
	h, t := r.head.Load(), r.tail.Load()
	if h-t == uint64(len(r.buf)) {
		r.dropped.Add(1)
		return false
	}
	r.buf[h%uint64(len(r.buf))] = v
	r.head.Store(h + 1)
	return true
}

// Drain consumes every entry pushed so far, oldest first. Drainer
// goroutine only; safe against a concurrent producer.
func (r *SPSC[T]) Drain(f func(T)) {
	t, h := r.tail.Load(), r.head.Load()
	for ; t < h; t++ {
		f(r.buf[t%uint64(len(r.buf))])
	}
	r.tail.Store(t)
}

// Len reports how many entries are buffered and not yet drained.
func (r *SPSC[T]) Len() int { return int(r.head.Load() - r.tail.Load()) }

// Cap reports the ring capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Dropped reports how many entries were lost to a full ring. Safe from
// any goroutine.
func (r *SPSC[T]) Dropped() uint64 { return r.dropped.Load() }

// Last is a bounded log that keeps the most recent n entries,
// overwriting the oldest. Single-goroutine; pair it with an SPSC when
// the producer lives elsewhere.
type Last[T any] struct {
	buf    []T
	next   int
	filled bool
}

// NewLast builds a log retaining up to n entries (minimum 1).
func NewLast[T any](n int) *Last[T] {
	if n < 1 {
		n = 1
	}
	return &Last[T]{buf: make([]T, n)}
}

// Append records v, evicting the oldest entry when full.
func (l *Last[T]) Append(v T) {
	l.buf[l.next] = v
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.filled = true
	}
}

// Snapshot returns the retained entries, oldest first.
func (l *Last[T]) Snapshot() []T {
	if !l.filled {
		out := make([]T, l.next)
		copy(out, l.buf[:l.next])
		return out
	}
	out := make([]T, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Len reports how many entries are retained.
func (l *Last[T]) Len() int {
	if l.filled {
		return len(l.buf)
	}
	return l.next
}

// Cap reports the retention capacity.
func (l *Last[T]) Cap() int { return len(l.buf) }
