// External test package: these tests exercise trace.Capture against
// the real simulator Sources (CPU, MMU, VMM, VM), and core imports
// trace — an in-package test would be an import cycle.
package trace_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
)

func TestCaptureAndDelta(t *testing.T) {
	c := cpu.New(mem.New(64*1024), cpu.StandardVAX)
	before := trace.Capture(c)
	c.AddCycles(100)
	c.Stats.Instructions = 7
	after := trace.Capture(c)
	d := trace.Delta(before, after)
	if d.Get("cycles") != 100 || d.Get("instructions") != 7 {
		t.Errorf("delta: %v", d.Counters)
	}
	if d.Get("nonexistent") != 0 {
		t.Error("missing counters must read 0")
	}
	nz := d.NonZero()
	if len(nz.Counters) != 2 {
		t.Errorf("NonZero kept %d counters", len(nz.Counters))
	}
	if !strings.Contains(d.Format(), "cycles") {
		t.Error("Format missing counter")
	}
}

func TestCaptureMMUAndVMM(t *testing.T) {
	k := core.New(8<<20, core.Config{})
	vmm := trace.Capture(k)
	if _, ok := vmm.Counters["entries"]; !ok {
		t.Error("VMM snapshot incomplete")
	}
	m := trace.Capture(k.CPU.MMU)
	if _, ok := m.Counters["tlb_hits"]; !ok {
		t.Error("MMU snapshot incomplete")
	}
	vm, err := k.CreateVM(core.VMConfig{MemBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Capture(vm)
	if s.Name != vm.Name() {
		t.Errorf("snapshot name %q", s.Name)
	}
	if _, ok := s.Counters["vm_traps"]; !ok {
		t.Error("VM snapshot incomplete")
	}
}

func TestTable(t *testing.T) {
	a := trace.Snapshot{Name: "a", Counters: map[string]uint64{"x": 1, "y": 2}}
	b := trace.Snapshot{Name: "b", Counters: map[string]uint64{"x": 3, "z": 4}}
	out := trace.Table(a, b)
	for _, want := range []string{"counter", "a", "b", "x", "y", "z"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + x, y, z
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestCaptureParallel(t *testing.T) {
	k := core.New(8<<20, core.Config{})
	s := trace.Capture(k.LastParallelRun())
	if s.Get("vms") != 0 || s.Get("instructions") != 0 {
		t.Errorf("serial-only machine must report zero parallel totals: %v", s.Counters)
	}
	if s.Name != "parallel" {
		t.Errorf("parallel snapshot name %q", s.Name)
	}
}

func TestPrometheusExport(t *testing.T) {
	k := core.New(8<<20, core.Config{})
	var b strings.Builder
	trace.WritePrometheus(&b, trace.CaptureAll(k, k.CPU, k.CPU.MMU), nil)
	out := b.String()
	for _, want := range []string{
		`vax_counter{source="vmm",name="entries"}`,
		`vax_counter{source="cpu",name="cycles"}`,
		`vax_counter{source="mmu",name="tlb_hits"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus export missing %q:\n%s", want, out)
		}
	}
}
