package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
)

func TestCaptureAndDelta(t *testing.T) {
	c := cpu.New(mem.New(64*1024), cpu.StandardVAX)
	before := CaptureCPU(c)
	c.AddCycles(100)
	c.Stats.Instructions = 7
	after := CaptureCPU(c)
	d := Delta(before, after)
	if d.Get("cycles") != 100 || d.Get("instructions") != 7 {
		t.Errorf("delta: %v", d.Counters)
	}
	if d.Get("nonexistent") != 0 {
		t.Error("missing counters must read 0")
	}
	nz := d.NonZero()
	if len(nz.Counters) != 2 {
		t.Errorf("NonZero kept %d counters", len(nz.Counters))
	}
	if !strings.Contains(d.Format(), "cycles") {
		t.Error("Format missing counter")
	}
}

func TestCaptureMMUAndVMM(t *testing.T) {
	k := core.New(8<<20, core.Config{})
	vmm := CaptureVMM(k)
	if _, ok := vmm.Counters["entries"]; !ok {
		t.Error("VMM snapshot incomplete")
	}
	m := CaptureMMU(k.CPU.MMU)
	if _, ok := m.Counters["tlb_hits"]; !ok {
		t.Error("MMU snapshot incomplete")
	}
	vm, err := k.CreateVM(core.VMConfig{MemBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	s := CaptureVM(vm)
	if s.Name != vm.Name {
		t.Errorf("snapshot name %q", s.Name)
	}
}

func TestTable(t *testing.T) {
	a := Snapshot{Name: "a", Counters: map[string]uint64{"x": 1, "y": 2}}
	b := Snapshot{Name: "b", Counters: map[string]uint64{"x": 3, "z": 4}}
	out := Table(a, b)
	for _, want := range []string{"counter", "a", "b", "x", "y", "z"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + x, y, z
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestCaptureParallel(t *testing.T) {
	k := core.New(8<<20, core.Config{})
	s := CaptureParallel(k)
	if s.Get("vms") != 0 || s.Get("instructions") != 0 {
		t.Errorf("serial-only machine must report zero parallel totals: %v", s.Counters)
	}
}
