package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Export renderers: the same data — counter snapshots from any set of
// Sources plus the flight recorder's histograms and drop counters —
// rendered as Prometheus text exposition or JSON. Output ordering is
// deterministic (sorted) so exports diff cleanly run to run.

// Quantiles reported by every exporter and percentile table.
var exportQuantiles = []struct {
	q     float64
	label string
}{
	{0.50, "p50"},
	{0.95, "p95"},
	{0.99, "p99"},
}

// WritePrometheus renders counter snapshots and (when rec is non-nil)
// per-VM latency summaries and drop counters in the Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, snaps []Snapshot, rec *Recorder) {
	fmt.Fprintln(w, "# HELP vax_counter Monotonic simulator counters by source.")
	fmt.Fprintln(w, "# TYPE vax_counter counter")
	for _, s := range snaps {
		keys := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "vax_counter{source=%q,name=%q} %d\n", s.Name, k, s.Counters[k])
		}
	}
	if rec == nil {
		return
	}
	rec.Sync()
	fmt.Fprintln(w, "# HELP vax_latency_cycles VMM service latencies in guest cycles (bucket upper bounds).")
	fmt.Fprintln(w, "# TYPE vax_latency_cycles summary")
	for _, v := range rec.VMs() {
		for l := Lat(0); l < NumLat; l++ {
			h := v.Hist(l)
			if h.Count == 0 {
				continue
			}
			for _, eq := range exportQuantiles {
				fmt.Fprintf(w, "vax_latency_cycles{vm=%q,path=%q,quantile=%q} %d\n",
					v.Label, l, fmt.Sprintf("%.2f", eq.q), h.Quantile(eq.q))
			}
			fmt.Fprintf(w, "vax_latency_cycles_sum{vm=%q,path=%q} %d\n", v.Label, l, h.Sum)
			fmt.Fprintf(w, "vax_latency_cycles_count{vm=%q,path=%q} %d\n", v.Label, l, h.Count)
		}
	}
	fmt.Fprintln(w, "# HELP vax_events_dropped_total Flight-recorder events lost to full rings.")
	fmt.Fprintln(w, "# TYPE vax_events_dropped_total counter")
	for _, v := range rec.VMs() {
		fmt.Fprintf(w, "vax_events_dropped_total{vm=%q} %d\n", v.Label, v.Dropped())
	}
}

// jsonExport is the wire shape WriteJSON emits.
type jsonExport struct {
	Sources   []Snapshot        `json:"sources"`
	Latencies []jsonLatency     `json:"latencies,omitempty"`
	Dropped   map[string]uint64 `json:"events_dropped,omitempty"`
}

type jsonLatency struct {
	VM    string  `json:"vm"`
	Path  string  `json:"path"`
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum_cycles"`
	Mean  float64 `json:"mean_cycles"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
}

// WriteJSON renders the same export as WritePrometheus in JSON.
func WriteJSON(w io.Writer, snaps []Snapshot, rec *Recorder) error {
	out := jsonExport{Sources: snaps}
	if rec != nil {
		rec.Sync()
		out.Dropped = map[string]uint64{}
		for _, v := range rec.VMs() {
			out.Dropped[v.Label] = v.Dropped()
			for l := Lat(0); l < NumLat; l++ {
				h := v.Hist(l)
				if h.Count == 0 {
					continue
				}
				out.Latencies = append(out.Latencies, jsonLatency{
					VM: v.Label, Path: l.String(),
					Count: h.Count, Sum: h.Sum, Mean: h.Mean(),
					P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// HistTable renders one percentile row per VM and latency path: the
// table behind the monitor's hist command. Quantiles are bucket upper
// bounds, so every printed figure is a guaranteed ceiling.
func HistTable(rec *Recorder) string {
	if rec == nil {
		return "recorder disabled\n"
	}
	rec.Sync()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s %10s %12s %10s %10s %10s\n",
		"vm", "path", "count", "mean", "p50", "p95", "p99")
	rows := 0
	for _, v := range rec.VMs() {
		for l := Lat(0); l < NumLat; l++ {
			h := v.Hist(l)
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-10s %-12s %10d %12.1f %10d %10d %10d\n",
				v.Label, l, h.Count, h.Mean(),
				h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
			rows++
		}
	}
	if rows == 0 {
		b.WriteString("(no latency samples recorded)\n")
	}
	return b.String()
}

// FormatEvents renders the most recent n flight-recorder events per VM
// (all retained events when n <= 0), oldest first.
func FormatEvents(rec *Recorder, n int) string {
	if rec == nil {
		return "recorder disabled\n"
	}
	var b strings.Builder
	for _, v := range rec.VMs() {
		evs := v.Events(n)
		fmt.Fprintf(&b, "[%s] %d event(s), %d dropped\n", v.Label, len(evs), v.Dropped())
		for _, e := range evs {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	if b.Len() == 0 {
		b.WriteString("(no VMs registered)\n")
	}
	return b.String()
}
