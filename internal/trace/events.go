package trace

import (
	"fmt"
	"sync"
)

// The flight recorder: a per-VM lock-free ring of typed, fixed-size
// events stamped with the machine cycle counter. The producer is the
// goroutine executing the VM (the serial engine's single thread, or
// the VM's worker under the parallel engine), so Record needs no locks
// and never allocates; a full ring drops and counts rather than block.
// At every safe point — the parallel engine's merge barrier, or any
// moment the machine is not inside Run — Sync moves buffered events
// into a per-VM retained history (most recent RetainN), which is what
// the monitor's trace command and the export surface read.

// Kind classifies flight-recorder events.
type Kind uint8

const (
	EvVMTrap       Kind = iota // VM-emulation trap taken; arg = opcode
	EvCHM                      // change-mode emulated; arg = CHM code operand
	EvREI                      // REI emulated; arg = new guest PC
	EvShadowFill               // demand shadow-PTE fill; arg = faulting VA
	EvBatchFill                // batched neighbor fills; arg = PTEs filled
	EvModifyFault              // modify fault serviced; arg = faulting VA
	EvVirtualIRQ               // virtual interrupt delivered; arg = vector
	EvKCallStart               // KCALL entered; arg = function code
	EvKCallDone                // KCALL completed; arg = status
	EvKCallRetry               // transient disk error retried; arg = attempt
	EvSchedRun                 // VM resumed on the processor; arg = guest PC
	EvSchedPark                // VM gave up the processor (WAIT / worker park)
	EvWatchdogTrip             // watchdog halted the VM; arg = idle ticks
	EvMachineCheck             // virtual machine check delivered; arg = cause
	EvSchedSteal               // VM migrated to a new worker; arg = worker id
	EvCheckpoint               // checkpoint generation taken; arg = sequence
	EvRecover                  // VM restored from a checkpoint; arg = generation
	EvTraceCompile             // superblock installed by the hot-trace tier; arg = start VA
	EvCowBreak                 // copy-on-write break: shared page privatized; arg = VM page frame

	NumKinds
)

var kindNames = [NumKinds]string{
	"vm-trap", "chm", "rei", "shadow-fill", "batch-fill", "modify-fault",
	"virtual-irq", "kcall-start", "kcall-done", "kcall-retry",
	"sched-run", "sched-park", "watchdog-trip", "machine-check",
	"sched-steal", "checkpoint", "recover", "trace-compile",
	"cow-break",
}

func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one fixed-size flight-recorder record.
type Event struct {
	Cycle uint64 // machine cycle counter at the event
	Arg   uint32 // kind-specific detail (see the Kind constants)
	VM    int32  // VM ID
	Kind  Kind
}

func (e Event) String() string {
	return fmt.Sprintf("[%d] vm%d %s arg=%#x", e.Cycle, e.VM, e.Kind, e.Arg)
}

// Lat names the latency distributions the recorder maintains.
type Lat uint8

const (
	LatTrap       Lat = iota // VM-emulation trap service, entry to exit
	LatShadowFill            // one demand fill, including any batch
	LatKCall                 // KCALL entry to completion, retries included
	LatRecover               // supervisor recovery, death detection to resume-ready
	LatCowBreak              // one COW break, fault to private page mapped

	NumLat
)

var latNames = [NumLat]string{"trap", "shadow_fill", "kcall", "recover", "cow_break"}

func (l Lat) String() string {
	if l < NumLat {
		return latNames[l]
	}
	return fmt.Sprintf("lat(%d)", uint8(l))
}

// Recorder is the machine-wide flight recorder: one VMRecorder per VM,
// created lazily on the cold VM-creation path. The zero Recorder is
// not usable; a nil *Recorder (the default everywhere) is the disabled
// state, and every hot-path hook guards on it with a single pointer
// test, so the disabled path costs one branch and zero allocations.
type Recorder struct {
	ringCap int
	mu      sync.Mutex // guards the vms table (cold: VM creation only)
	vms     []*VMRecorder
}

// NewRecorder builds a recorder whose per-VM rings buffer ringCap
// events between Syncs (and retain the same number of history events).
func NewRecorder(ringCap int) *Recorder {
	if ringCap < 1 {
		ringCap = 1024
	}
	return &Recorder{ringCap: ringCap}
}

// VM returns (creating if needed) the per-VM recorder for id. Safe for
// concurrent callers; call once per VM at creation time and keep the
// pointer — the hot path must not come back through this lock.
func (r *Recorder) VM(id int, label string) *VMRecorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.vms) <= id {
		r.vms = append(r.vms, nil)
	}
	if r.vms[id] == nil {
		r.vms[id] = &VMRecorder{
			ID:    id,
			Label: label,
			ring:  NewSPSC[Event](r.ringCap),
		}
	}
	return r.vms[id]
}

// VMs returns the per-VM recorders, ID order.
func (r *Recorder) VMs() []*VMRecorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*VMRecorder, 0, len(r.vms))
	for _, v := range r.vms {
		if v != nil {
			out = append(out, v)
		}
	}
	return out
}

// Sync drains every VM's live ring into its retained history. Call
// only from a safe point: the parallel engine invokes it at the merge
// barrier after every worker has finished, and serial callers invoke
// it whenever the machine is not inside Run.
func (r *Recorder) Sync() {
	for _, v := range r.VMs() {
		v.sync()
	}
}

// Dropped sums the events lost to full rings across all VMs.
func (r *Recorder) Dropped() uint64 {
	var n uint64
	for _, v := range r.VMs() {
		n += v.Dropped()
	}
	return n
}

// VMRecorder records one VM's events and latencies. Record and Observe
// belong to the goroutine executing the VM; everything else belongs to
// whoever holds the machine at a safe point.
type VMRecorder struct {
	ID    int
	Label string

	ring *SPSC[Event]
	hist [NumLat]Hist
	// history is allocated on the first sync so a recorder that is
	// never drained (a benchmark run, say) pays for one ring, not two.
	history *Last[Event]
}

// Record pushes one event (producer goroutine only; never allocates).
func (v *VMRecorder) Record(kind Kind, cycle uint64, arg uint32) {
	v.ring.Push(Event{Cycle: cycle, Arg: arg, VM: int32(v.ID), Kind: kind})
}

// Observe adds one latency sample in machine cycles (producer
// goroutine only; never allocates).
func (v *VMRecorder) Observe(l Lat, cycles uint64) {
	v.hist[l].Observe(cycles)
}

// Hist returns the named latency histogram. Read at safe points only.
func (v *VMRecorder) Hist(l Lat) *Hist { return &v.hist[l] }

// Dropped reports events lost to a full ring (safe from any goroutine).
func (v *VMRecorder) Dropped() uint64 { return v.ring.Dropped() }

// sync drains the live ring into the retained history.
func (v *VMRecorder) sync() {
	if v.history == nil {
		v.history = NewLast[Event](v.ring.Cap())
	}
	v.ring.Drain(v.history.Append)
}

// Events syncs and returns the retained history, oldest first; with
// n > 0 only the most recent n events are returned.
func (v *VMRecorder) Events(n int) []Event {
	v.sync()
	out := v.history.Snapshot()
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}
