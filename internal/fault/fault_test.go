package fault

import "testing"

func fullConfig(target int) Config {
	return Config{
		TargetVM:          target,
		TransientDiskRate: 0.3,
		TransientBurst:    3,
		PermanentDiskRate: 0.1,
		BusWindows:        2,
		BusWindowTicks:    4,
		BusBase:           0x1000,
		BusSpan:           0x4000,
		BusRangeBytes:     0x200,
		Storms:            2,
		StormTicks:        3,
		PTECorruptions:    4,
		Horizon:           50,
	}
}

// drive records a canonical question sequence against an injector.
func drive(i *Injector) []int {
	var trace []int
	for op := 0; op < 200; op++ {
		attempt := 0
		for {
			out := i.DiskAttempt(0, attempt, op%2 == 0)
			trace = append(trace, int(out))
			if out != DiskTransient || attempt >= 3 {
				break
			}
			attempt++
		}
	}
	for tick := uint64(0); tick < 60; tick++ {
		if i.BusErrorHit(0, tick, 0x2000, 512) {
			trace = append(trace, 100)
		}
		if i.StormHit(0, tick) {
			trace = append(trace, 101)
		}
		if i.TakeCorruption(0, tick) {
			trace = append(trace, 102)
		}
	}
	return trace
}

func TestSameSeedReplaysExactly(t *testing.T) {
	a := drive(New(7, fullConfig(0)))
	b := drive(New(7, fullConfig(0)))
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := drive(New(1, fullConfig(0)))
	b := drive(New(2, fullConfig(0)))
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical traces")
	}
}

func TestTargetingFiltersVMs(t *testing.T) {
	i := New(3, fullConfig(1))
	for op := 0; op < 500; op++ {
		if out := i.DiskAttempt(0, 0, false); out != DiskOK {
			t.Fatalf("untargeted VM got disk outcome %v", out)
		}
	}
	for tick := uint64(0); tick < 100; tick++ {
		if i.BusErrorHit(0, tick, 0, 1<<20) || i.StormHit(0, tick) || i.TakeCorruption(0, tick) {
			t.Fatal("untargeted VM got a scheduled fault")
		}
	}
	if s := i.Stats; s != (Stats{}) {
		t.Errorf("stats recorded for untargeted VM: %+v", s)
	}
	wild := New(3, fullConfig(-1))
	hit := false
	for op := 0; op < 500 && !hit; op++ {
		hit = wild.DiskAttempt(42, 0, false) != DiskOK
	}
	if !hit {
		t.Error("TargetVM=-1 never injected")
	}
}

func TestTransientBurstBounded(t *testing.T) {
	i := New(11, Config{TargetVM: -1, TransientDiskRate: 1, TransientBurst: 2})
	for op := 0; op < 100; op++ {
		fails := 0
		for attempt := 0; ; attempt++ {
			out := i.DiskAttempt(0, attempt, false)
			if out == DiskPermanent {
				t.Fatal("permanent outcome with zero permanent rate")
			}
			if out == DiskOK {
				break
			}
			fails++
			if fails > 2 {
				t.Fatalf("burst of %d exceeds TransientBurst=2", fails)
			}
		}
		if fails == 0 {
			t.Fatal("rate 1.0 produced a clean operation")
		}
	}
	if i.Stats.TransientBursts != 100 {
		t.Errorf("TransientBursts = %d, want 100", i.Stats.TransientBursts)
	}
}

func TestCorruptionEventsConsumeOnce(t *testing.T) {
	cfg := fullConfig(0)
	i := New(5, cfg)
	taken := 0
	for tick := uint64(0); tick < cfg.Horizon+10; tick++ {
		for i.TakeCorruption(0, tick) {
			taken++
		}
	}
	if taken != cfg.PTECorruptions {
		t.Errorf("consumed %d corruption events, want %d", taken, cfg.PTECorruptions)
	}
	if i.TakeCorruption(0, 1<<30) {
		t.Error("corruption event consumed twice")
	}
}
