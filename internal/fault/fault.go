// Package fault is a deterministic, seedable fault-injection plan for
// the VMM experiments. An Injector is built once from a seed and a
// Config; every schedule (bus-error windows, clock-interrupt storms,
// shadow-PTE corruption events) and every per-operation dice roll comes
// from the same seeded PRNG, so a campaign run replays exactly from its
// seed. The injector knows nothing about the VMM: callers ask it
// questions ("does this disk attempt fail?", "is this physical range
// inside a bus-error window at this tick?") and apply the consequences
// themselves.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
)

// DiskOutcome is the injector's verdict on one disk transfer attempt.
type DiskOutcome int

const (
	// DiskOK lets the attempt through.
	DiskOK DiskOutcome = iota
	// DiskTransient fails the attempt but a bounded retry may succeed.
	DiskTransient
	// DiskPermanent fails the operation irrecoverably: retries are
	// pointless and the error must surface to the guest.
	DiskPermanent
)

func (o DiskOutcome) String() string {
	switch o {
	case DiskTransient:
		return "transient"
	case DiskPermanent:
		return "permanent"
	}
	return "ok"
}

// Config describes a fault plan. Zero values disable each fault class.
type Config struct {
	// TargetVM selects the VM the plan injects into; a negative value
	// targets every caller (including the bare machine, which consults
	// the injector with VM -1).
	TargetVM int

	// TargetVMs, when non-empty, overrides TargetVM with an explicit
	// victim set — the recovery campaign aims different fault classes
	// at different VMs of one machine.
	TargetVMs []int

	// TransientDiskRate is the per-operation probability that a disk
	// transfer starts a transient error burst of 1..TransientBurst
	// failed attempts; PermanentDiskRate is the per-operation
	// probability of a permanent device error. Both are rolled once per
	// operation (attempt 0), not per retry.
	TransientDiskRate float64
	TransientBurst    int
	PermanentDiskRate float64

	// BusWindows bus-error windows, each BusWindowTicks ticks long and
	// BusRangeBytes bytes wide, are placed uniformly over the horizon
	// and over [BusBase, BusBase+BusSpan) in physical address space.
	// A DMA range overlapping an active window takes a bus error.
	BusWindows     int
	BusWindowTicks uint64
	BusBase        uint32
	BusSpan        uint32
	BusRangeBytes  uint32

	// Storms clock-interrupt storms of StormTicks ticks each: while a
	// storm is active the timer line "sticks" and the target VM sees a
	// clock interrupt at every delivery opportunity.
	Storms     int
	StormTicks uint64

	// PTECorruptions shadow-PTE corruption events spread over the
	// horizon: each flips the frame number of one live shadow PTE.
	PTECorruptions int

	// CkptCorruptions poisons the newest checkpoint generation of a
	// targeted VM at recovery time, for the first n recoveries: the
	// supervisor must reject the corrupted image (CRC) and fall back a
	// generation.
	CkptCorruptions int

	// Horizon is the tick range over which scheduled events spread.
	Horizon uint64
}

// DefaultConfig is a moderate all-classes plan aimed at targetVM,
// suitable for interactive use from the monitor.
func DefaultConfig(targetVM int) Config {
	return Config{
		TargetVM:          targetVM,
		TransientDiskRate: 0.05,
		TransientBurst:    2,
		PermanentDiskRate: 0.02,
		BusWindows:        1,
		BusWindowTicks:    2,
		BusSpan:           0x10000,
		BusRangeBytes:     1024,
		Storms:            1,
		StormTicks:        2,
		PTECorruptions:    2,
		Horizon:           200,
	}
}

// Stats counts what the plan actually injected (scheduled events that
// were never consulted or never hit do not count).
type Stats struct {
	TransientBursts uint64 // transient error bursts started
	TransientFails  uint64 // individual attempts failed transiently
	PermanentErrors uint64
	BusErrors       uint64
	StormDeliveries uint64 // delivery opportunities inside a storm
	PTECorruptions  uint64 // corruption events applied by the caller
	CkptCorruptions uint64 // checkpoint generations poisoned by the caller
}

// window is a half-open tick range, optionally with a physical range.
type window struct {
	from, to    uint64
	base, limit uint32
}

func (w window) activeAt(tick uint64) bool { return tick >= w.from && tick < w.to }

// Injector answers fault questions deterministically from its seed.
type Injector struct {
	seed int64
	cfg  Config
	rng  *rand.Rand

	busWindows []window
	storms     []window
	corrupts   []uint64 // sorted maturity ticks, consumed front to back

	failLeft int // remaining attempts of the current transient burst
	ckptLeft int // remaining checkpoint-corruption events

	Stats Stats
}

// New builds the plan: all schedules are drawn up front so the
// injection sequence depends only on (seed, cfg) and the order of the
// caller's questions.
func New(seed int64, cfg Config) *Injector {
	if cfg.TransientBurst < 1 {
		cfg.TransientBurst = 1
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 100
	}
	if cfg.BusWindowTicks == 0 {
		cfg.BusWindowTicks = 2
	}
	if cfg.BusRangeBytes == 0 {
		cfg.BusRangeBytes = 512
	}
	if cfg.StormTicks == 0 {
		cfg.StormTicks = 2
	}
	i := &Injector{seed: seed, cfg: cfg, rng: rand.New(rand.NewSource(seed)),
		ckptLeft: cfg.CkptCorruptions}
	for n := 0; n < cfg.BusWindows; n++ {
		from := uint64(i.rng.Int63n(int64(cfg.Horizon)))
		base := cfg.BusBase
		if cfg.BusSpan > 0 {
			base += uint32(i.rng.Intn(int(cfg.BusSpan)))
		}
		i.busWindows = append(i.busWindows, window{
			from: from, to: from + cfg.BusWindowTicks,
			base: base, limit: base + cfg.BusRangeBytes,
		})
	}
	for n := 0; n < cfg.Storms; n++ {
		from := uint64(i.rng.Int63n(int64(cfg.Horizon)))
		i.storms = append(i.storms, window{from: from, to: from + cfg.StormTicks})
	}
	for n := 0; n < cfg.PTECorruptions; n++ {
		i.corrupts = append(i.corrupts, uint64(i.rng.Int63n(int64(cfg.Horizon))))
	}
	sort.Slice(i.corrupts, func(a, b int) bool { return i.corrupts[a] < i.corrupts[b] })
	return i
}

// Seed returns the plan's seed.
func (i *Injector) Seed() int64 { return i.seed }

// Config returns the plan's effective configuration.
func (i *Injector) Config() Config { return i.cfg }

// Targets reports whether the plan injects into the given VM (negative
// TargetVM matches everything; a non-empty TargetVMs set wins over
// TargetVM).
func (i *Injector) Targets(vm int) bool {
	if len(i.cfg.TargetVMs) > 0 {
		for _, t := range i.cfg.TargetVMs {
			if vm == t {
				return true
			}
		}
		return false
	}
	return i.cfg.TargetVM < 0 || vm == i.cfg.TargetVM
}

// DiskAttempt is consulted once per disk transfer attempt; attempt 0 is
// the fresh operation (the dice are rolled), attempt > 0 is a retry
// (the current burst, if any, plays out).
func (i *Injector) DiskAttempt(vm, attempt int, write bool) DiskOutcome {
	if !i.Targets(vm) {
		return DiskOK
	}
	if attempt == 0 {
		i.failLeft = 0
		r := i.rng.Float64()
		switch {
		case r < i.cfg.PermanentDiskRate:
			i.Stats.PermanentErrors++
			return DiskPermanent
		case r < i.cfg.PermanentDiskRate+i.cfg.TransientDiskRate:
			i.Stats.TransientBursts++
			i.failLeft = 1 + i.rng.Intn(i.cfg.TransientBurst)
		}
	}
	if i.failLeft > 0 {
		i.failLeft--
		i.Stats.TransientFails++
		return DiskTransient
	}
	return DiskOK
}

// BusErrorHit reports whether the physical range [base, base+n) falls
// inside a bus-error window active at tick.
func (i *Injector) BusErrorHit(vm int, tick uint64, base, n uint32) bool {
	if !i.Targets(vm) {
		return false
	}
	for _, w := range i.busWindows {
		if w.activeAt(tick) && base < w.limit && w.base < base+n {
			i.Stats.BusErrors++
			return true
		}
	}
	return false
}

// StormHit reports whether a clock-interrupt storm is active at tick
// for the given VM; each true answer is one storm delivery.
func (i *Injector) StormHit(vm int, tick uint64) bool {
	if !i.Targets(vm) {
		return false
	}
	for _, w := range i.storms {
		if w.activeAt(tick) {
			i.Stats.StormDeliveries++
			return true
		}
	}
	return false
}

// TakeCorruption consumes one matured shadow-PTE corruption event for
// the given VM, if any.
func (i *Injector) TakeCorruption(vm int, tick uint64) bool {
	if !i.Targets(vm) || len(i.corrupts) == 0 || i.corrupts[0] > tick {
		return false
	}
	i.corrupts = i.corrupts[1:]
	return true
}

// NoteCorruption records that the caller applied a corruption event.
func (i *Injector) NoteCorruption() { i.Stats.PTECorruptions++ }

// TakeCkptCorruption consumes one checkpoint-corruption event for the
// given VM, if any remain: count-based rather than tick-based, because
// the events fire at recovery time, whenever that happens to be.
func (i *Injector) TakeCkptCorruption(vm int) bool {
	if !i.Targets(vm) || i.ckptLeft == 0 {
		return false
	}
	i.ckptLeft--
	return true
}

// NoteCkptCorruption records that the caller poisoned a generation.
func (i *Injector) NoteCkptCorruption() { i.Stats.CkptCorruptions++ }

// Pick returns a deterministic choice in [0, n) for the caller's own
// randomized decisions (which PTE to corrupt, which bit to flip).
func (i *Injector) Pick(n int) int {
	if n <= 1 {
		return 0
	}
	return i.rng.Intn(n)
}

// Summary renders the applied-fault counters on one line.
func (i *Injector) Summary() string {
	s := i.Stats
	line := fmt.Sprintf(
		"seed %d: transient bursts %d (%d failed attempts), permanent %d, bus errors %d, storm deliveries %d, pte corruptions %d (%d pending)",
		i.seed, s.TransientBursts, s.TransientFails, s.PermanentErrors,
		s.BusErrors, s.StormDeliveries, s.PTECorruptions, len(i.corrupts))
	if i.cfg.CkptCorruptions > 0 {
		line += fmt.Sprintf(", ckpt corruptions %d (%d pending)", s.CkptCorruptions, i.ckptLeft)
	}
	return line
}
