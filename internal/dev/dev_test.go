package dev

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/vax"
)

func newCPU(t *testing.T) *cpu.CPU {
	t.Helper()
	c := cpu.New(mem.New(64*1024), cpu.StandardVAX)
	c.SetPSL(vax.PSL(0).WithCur(vax.Kernel))
	return c
}

func TestConsoleOutput(t *testing.T) {
	c := newCPU(t)
	con := NewConsole()
	c.AddDevice(con)
	for _, b := range []byte("hi") {
		if err := c.WriteIPR(vax.IPRTXDB, uint32(b)); err != nil {
			t.Fatal(err)
		}
	}
	if con.Output() != "hi" {
		t.Errorf("output = %q", con.Output())
	}
	v, err := c.ReadIPR(vax.IPRTXCS)
	if err != nil || v&vax.ConsoleReady == 0 {
		t.Errorf("TXCS = %#x, %v", v, err)
	}
}

func TestConsoleInput(t *testing.T) {
	c := newCPU(t)
	con := NewConsole()
	c.AddDevice(con)
	v, _ := c.ReadIPR(vax.IPRRXCS)
	if v&vax.ConsoleReady != 0 {
		t.Error("RXCS ready with no input")
	}
	con.Feed("ab")
	v, _ = c.ReadIPR(vax.IPRRXCS)
	if v&vax.ConsoleReady == 0 {
		t.Error("RXCS not ready with input queued")
	}
	b1, _ := c.ReadIPR(vax.IPRRXDB)
	b2, _ := c.ReadIPR(vax.IPRRXDB)
	if b1 != 'a' || b2 != 'b' {
		t.Errorf("read %c %c", b1, b2)
	}
}

func TestConsoleReceiveInterrupt(t *testing.T) {
	c := newCPU(t)
	con := NewConsole()
	c.AddDevice(con)
	if err := c.WriteIPR(vax.IPRRXCS, vax.ConsoleIE); err != nil {
		t.Fatal(err)
	}
	con.Feed("x")
	con.Tick(c, 1)
	if c.PendingAbove(0) != vax.IPLConsole {
		t.Error("no console interrupt posted")
	}
}

func TestClockCountsAndInterrupts(t *testing.T) {
	c := newCPU(t)
	k := NewClock()
	c.AddDevice(k)
	k.Interval(100)
	if !k.Running() {
		t.Fatal("clock not running")
	}
	k.Tick(c, 99)
	if k.Ticks != 0 {
		t.Error("ticked early")
	}
	k.Tick(c, 1)
	if k.Ticks != 1 {
		t.Errorf("Ticks = %d", k.Ticks)
	}
	if c.PendingAbove(0) != vax.IPLClock {
		t.Error("no clock interrupt")
	}
	// Acknowledge.
	iccs, _ := c.ReadIPR(vax.IPRICCS)
	if iccs&vax.ICCSInt == 0 {
		t.Error("ICCS interrupt bit clear")
	}
	if err := c.WriteIPR(vax.IPRICCS, iccs); err != nil {
		t.Fatal(err)
	}
	if c.PendingAbove(0) != 0 {
		t.Error("ack did not clear interrupt")
	}
	// Multiple intervals in one tick.
	k.Tick(c, 250)
	if k.Ticks != 3 {
		t.Errorf("Ticks = %d, want 3", k.Ticks)
	}
}

func TestClockIPRRoundTrip(t *testing.T) {
	c := newCPU(t)
	k := NewClock()
	c.AddDevice(k)
	if err := c.WriteIPR(vax.IPRNICR, ^uint32(49)); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteIPR(vax.IPRICCS, vax.ICCSTransfer|vax.ICCSRun); err != nil {
		t.Fatal(err)
	}
	icr, _ := c.ReadIPR(vax.IPRICR)
	if icr != ^uint32(49) {
		t.Errorf("ICR = %#x", icr)
	}
	nicr, _ := c.ReadIPR(vax.IPRNICR)
	if nicr != ^uint32(49) {
		t.Errorf("NICR = %#x", nicr)
	}
	todr1, _ := c.ReadIPR(vax.IPRTODR)
	c.AddCycles(1000)
	todr2, _ := c.ReadIPR(vax.IPRTODR)
	if todr2 <= todr1 {
		t.Error("TODR does not advance")
	}
}

func TestDiskMMIOTransfer(t *testing.T) {
	c := newCPU(t)
	d := NewDisk(0x20000000, 16)
	c.AddDevice(d)
	copy(d.Image()[vax.PageSize:], []byte("block one data"))

	// Program a read of block 1 into physical 0x4000 via the CSRs, as a
	// driver would.
	write := func(off, v uint32) {
		if err := d.StoreReg(c, off, v); err != nil {
			t.Fatal(err)
		}
	}
	write(DiskRegBlock, 1)
	write(DiskRegAddr, 0x4000)
	write(DiskRegCount, 32)
	write(DiskRegCSR, DiskCSRGo|DiskFuncRead|DiskCSRIE)
	if v, _ := d.LoadReg(c, DiskRegCSR); v&DiskCSRReady != 0 {
		t.Fatal("disk ready while busy")
	}
	d.Tick(c, DiskLatency)
	if v, _ := d.LoadReg(c, DiskRegCSR); v&DiskCSRReady == 0 {
		t.Fatal("disk not ready after latency")
	}
	if v, _ := d.LoadReg(c, DiskRegStat); v != DiskStatOK {
		t.Fatalf("status = %d", v)
	}
	got, _ := c.Mem.LoadBytes(0x4000, 14)
	if string(got) != "block one data" {
		t.Errorf("read data %q", got)
	}
	if c.PendingAbove(0) != vax.IPLDisk {
		t.Error("no completion interrupt")
	}
	if d.Reads != 1 || d.RegAccesses == 0 {
		t.Errorf("stats: reads=%d regaccesses=%d", d.Reads, d.RegAccesses)
	}
}

func TestDiskMMIOWriteAndErrors(t *testing.T) {
	c := newCPU(t)
	d := NewDisk(0x20000000, 2)
	c.AddDevice(d)
	if err := c.Mem.StoreBytes(0x100, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	st := func(off, v uint32) {
		if err := d.StoreReg(c, off, v); err != nil {
			t.Fatal(err)
		}
	}
	st(DiskRegBlock, 0)
	st(DiskRegAddr, 0x100)
	st(DiskRegCount, 3)
	st(DiskRegCSR, DiskCSRGo|DiskFuncWrite)
	d.Tick(c, DiskLatency)
	if string(d.Image()[:3]) != "xyz" {
		t.Errorf("image = %q", d.Image()[:3])
	}
	// Out-of-range block errors.
	st(DiskRegBlock, 99)
	st(DiskRegCSR, DiskCSRGo|DiskFuncRead)
	d.Tick(c, DiskLatency)
	if v, _ := d.LoadReg(c, DiskRegStat); v != DiskStatErr {
		t.Error("out-of-range transfer did not error")
	}
}

func TestDiskDirectPath(t *testing.T) {
	d := NewDisk(0x20000000, 4)
	buf := make([]byte, vax.PageSize)
	copy(buf, "direct")
	if err := d.WriteBlock(2, buf); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, vax.PageSize)
	if err := d.ReadBlock(2, out); err != nil {
		t.Fatal(err)
	}
	if string(out[:6]) != "direct" {
		t.Errorf("got %q", out[:6])
	}
	if err := d.ReadBlock(99, out); err == nil {
		t.Error("out-of-range ReadBlock should fail")
	}
	if err := d.WriteBlock(99, buf); err == nil {
		t.Error("out-of-range WriteBlock should fail")
	}
	if d.Blocks() != 4 {
		t.Errorf("Blocks = %d", d.Blocks())
	}
	// The direct path must not count register accesses.
	if d.RegAccesses != 0 {
		t.Error("direct path counted register accesses")
	}
}

func TestDiskMMIOThroughCPUMemoryPath(t *testing.T) {
	// Device registers are reachable with ordinary memory references —
	// the "typical VAX I/O mechanism" the paper describes.
	c := newCPU(t)
	d := NewDisk(0x20000000, 2)
	c.AddDevice(d)
	if err := c.StoreVirt(0x20000000+DiskRegBlock, 4, 1, vax.Kernel); err != nil {
		t.Fatal(err)
	}
	v, err := c.LoadVirt(0x20000000+DiskRegBlock, 4, vax.Kernel)
	if err != nil || v != 1 {
		t.Errorf("MMIO longword access: %d, %v", v, err)
	}
	if d.RegAccesses != 2 {
		t.Errorf("RegAccesses = %d, want 2", d.RegAccesses)
	}
}

func TestDiskMMIOFaultInjection(t *testing.T) {
	// With a certain-failure fault plan attached, a programmed transfer
	// completes with an error status instead of moving data; detaching
	// the plan restores normal service.
	c := newCPU(t)
	d := NewDisk(0x20000000, 16)
	c.AddDevice(d)
	d.Faults = fault.New(3, fault.Config{TargetVM: -1, PermanentDiskRate: 1})
	copy(d.Image()[vax.PageSize:], []byte("block one data"))

	write := func(off, v uint32) {
		if err := d.StoreReg(c, off, v); err != nil {
			t.Fatal(err)
		}
	}
	program := func() {
		write(DiskRegBlock, 1)
		write(DiskRegAddr, 0x4000)
		write(DiskRegCount, 32)
		write(DiskRegCSR, DiskCSRGo|DiskFuncRead)
		d.Tick(c, DiskLatency)
	}
	program()
	if v, _ := d.LoadReg(c, DiskRegStat); v != DiskStatErr {
		t.Fatalf("status = %d, want error under injection", v)
	}
	if d.Reads != 0 {
		t.Errorf("Reads = %d, want 0 (failed transfer moved data)", d.Reads)
	}
	if got, _ := c.Mem.LoadBytes(0x4000, 4); string(got) != "\x00\x00\x00\x00" {
		t.Errorf("memory written despite injected error: %q", got)
	}

	d.Faults = nil
	program()
	if v, _ := d.LoadReg(c, DiskRegStat); v != DiskStatOK {
		t.Fatalf("status = %d after disarming, want OK", v)
	}
	if got, _ := c.Mem.LoadBytes(0x4000, 14); string(got) != "block one data" {
		t.Errorf("read data %q", got)
	}
}
