// Package dev provides the device models of the simulated VAX system:
// the console (IPR-based, as on real VAXes), the interval clock, and a
// block-storage disk controller reachable both through memory-mapped
// CSRs (the typical VAX I/O mechanism of Section 4.4.3 of the paper)
// and through direct block operations used by the VMM's KCALL start-I/O
// path.
package dev

import (
	"bytes"

	"repro/internal/cpu"
	"repro/internal/vax"
)

// Console models the VAX console terminal, accessed through the RXCS/
// RXDB/TXCS/TXDB internal processor registers.
type Console struct {
	out   bytes.Buffer
	in    []byte
	rxIE  bool
	txIE  bool
	rxInt bool
}

// NewConsole creates an idle console.
func NewConsole() *Console { return &Console{} }

// Output returns everything written to the console so far.
func (t *Console) Output() string { return t.out.String() }

// Feed queues input bytes for the receiver.
func (t *Console) Feed(s string) { t.in = append(t.in, s...) }

// Tick implements cpu.Device.
func (t *Console) Tick(c *cpu.CPU, cycles uint64) {
	if t.rxIE && len(t.in) > 0 && !t.rxInt {
		t.rxInt = true
		c.RequestInterrupt(vax.IPLConsole, vax.VecConsole)
	}
}

// ReadIPR implements cpu.IPRHandler.
func (t *Console) ReadIPR(c *cpu.CPU, r vax.IPR) (uint32, bool) {
	switch r {
	case vax.IPRRXCS:
		v := uint32(0)
		if len(t.in) > 0 {
			v |= vax.ConsoleReady
		}
		if t.rxIE {
			v |= vax.ConsoleIE
		}
		return v, true
	case vax.IPRRXDB:
		if len(t.in) == 0 {
			return 0, true
		}
		b := t.in[0]
		t.in = t.in[1:]
		t.rxInt = false
		return uint32(b), true
	case vax.IPRTXCS:
		// The transmitter is always ready (the host buffer never fills).
		v := vax.ConsoleReady
		if t.txIE {
			v |= vax.ConsoleIE
		}
		return v, true
	case vax.IPRTXDB:
		return 0, true
	}
	return 0, false
}

// WriteIPR implements cpu.IPRHandler.
func (t *Console) WriteIPR(c *cpu.CPU, r vax.IPR, v uint32) bool {
	switch r {
	case vax.IPRRXCS:
		t.rxIE = v&vax.ConsoleIE != 0
		return true
	case vax.IPRTXCS:
		t.txIE = v&vax.ConsoleIE != 0
		return true
	case vax.IPRTXDB:
		t.out.WriteByte(byte(v))
		return true
	case vax.IPRRXDB:
		return true
	}
	return false
}

var _ cpu.Device = (*Console)(nil)
var _ cpu.IPRHandler = (*Console)(nil)
