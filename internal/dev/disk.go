package dev

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/vax"
)

// Disk register offsets within the controller's CSR window. The typical
// VAX I/O style: software banging several memory-mapped registers per
// transfer — exactly the pattern Section 4.4.3 of the paper found
// expensive to emulate, motivating the KCALL start-I/O instruction.
const (
	DiskRegCSR   = 0x00 // control/status
	DiskRegBlock = 0x04 // block number
	DiskRegAddr  = 0x08 // physical memory address
	DiskRegCount = 0x0C // byte count
	DiskRegStat  = 0x10 // completion status
	DiskWindow   = 0x20 // window size in bytes

	DiskCSRGo    uint32 = 1 << 0
	DiskCSRFunc  uint32 = 3 << 1 // 1 = read, 2 = write
	DiskCSRIE    uint32 = 1 << 6
	DiskCSRReady uint32 = 1 << 7

	DiskFuncRead  uint32 = 1 << 1
	DiskFuncWrite uint32 = 2 << 1

	DiskStatOK  uint32 = 0
	DiskStatErr uint32 = 1

	// DiskLatency is the simulated cycles between GO and completion.
	DiskLatency = 200
)

// Disk is a block-storage controller with an in-memory image. It is
// reachable two ways: through its memory-mapped CSR window (bare
// machine and the MMIO-emulation baseline), and through the direct
// ReadBlock/WriteBlock methods used by the VMM's KCALL service.
type Disk struct {
	base  uint32
	image []byte

	csr, block, addr, count, stat uint32
	busyFor                       uint64 // cycles until completion
	pendingFunc                   uint32

	Reads  uint64
	Writes uint64
	// RegAccesses counts CSR window references, the quantity the E5
	// experiment compares across I/O virtualization strategies.
	RegAccesses uint64

	// Faults, when set, lets a fault plan fail transfers on the MMIO
	// path (the bare machine consults it as VM -1).
	Faults *fault.Injector
}

// NewDisk creates a disk with the given number of 512-byte blocks whose
// CSR window sits at physical address base.
func NewDisk(base uint32, blocks int) *Disk {
	return &Disk{base: base, image: make([]byte, blocks*vax.PageSize), csr: DiskCSRReady}
}

// Blocks returns the disk size in blocks.
func (d *Disk) Blocks() int { return len(d.image) / vax.PageSize }

// Image returns the backing image (for test setup).
func (d *Disk) Image() []byte { return d.image }

// Window implements cpu.MMIOHandler.
func (d *Disk) Window() (uint32, uint32) { return d.base, DiskWindow }

// LoadReg implements cpu.MMIOHandler.
func (d *Disk) LoadReg(c *cpu.CPU, offset uint32) (uint32, error) {
	d.RegAccesses++
	switch offset &^ 3 {
	case DiskRegCSR:
		return d.csr, nil
	case DiskRegBlock:
		return d.block, nil
	case DiskRegAddr:
		return d.addr, nil
	case DiskRegCount:
		return d.count, nil
	case DiskRegStat:
		return d.stat, nil
	}
	return 0, nil
}

// StoreReg implements cpu.MMIOHandler.
func (d *Disk) StoreReg(c *cpu.CPU, offset uint32, v uint32) error {
	d.RegAccesses++
	switch offset &^ 3 {
	case DiskRegCSR:
		d.csr = d.csr&^DiskCSRIE | v&DiskCSRIE
		if v&DiskCSRGo != 0 && d.csr&DiskCSRReady != 0 {
			d.csr &^= DiskCSRReady
			d.pendingFunc = v & DiskCSRFunc
			d.busyFor = DiskLatency
		}
	case DiskRegBlock:
		d.block = v
	case DiskRegAddr:
		d.addr = v
	case DiskRegCount:
		d.count = v
	case DiskRegStat:
		// read-only
	}
	return nil
}

// Tick implements cpu.Device: completes an in-flight transfer when its
// latency elapses.
func (d *Disk) Tick(c *cpu.CPU, cycles uint64) {
	if d.csr&DiskCSRReady != 0 || d.busyFor == 0 {
		return
	}
	if cycles < d.busyFor {
		d.busyFor -= cycles
		return
	}
	d.busyFor = 0
	d.stat = d.transfer(c)
	d.csr |= DiskCSRReady
	if d.csr&DiskCSRIE != 0 {
		c.RequestInterrupt(vax.IPLDisk, vax.VecDisk)
	}
}

// transfer moves d.count bytes between the image and physical memory.
func (d *Disk) transfer(c *cpu.CPU) uint32 {
	off := int(d.block) * vax.PageSize
	n := int(d.count)
	if off < 0 || off+n > len(d.image) {
		return DiskStatErr
	}
	if d.Faults != nil && d.Faults.DiskAttempt(-1, 0, d.pendingFunc == DiskFuncWrite) != fault.DiskOK {
		return DiskStatErr
	}
	switch d.pendingFunc {
	case DiskFuncRead:
		d.Reads++
		if err := c.Mem.StoreBytes(d.addr, d.image[off:off+n]); err != nil {
			return DiskStatErr
		}
	case DiskFuncWrite:
		d.Writes++
		data, err := c.Mem.LoadBytes(d.addr, uint32(n))
		if err != nil {
			return DiskStatErr
		}
		copy(d.image[off:off+n], data)
	default:
		return DiskStatErr
	}
	return DiskStatOK
}

// ReadBlock copies one block from the disk image into buf; the direct
// path used by the VMM's KCALL start-I/O service.
func (d *Disk) ReadBlock(block uint32, buf []byte) error {
	off := int(block) * vax.PageSize
	if off < 0 || off+len(buf) > len(d.image) {
		return fmt.Errorf("disk: read of block %d out of range", block)
	}
	d.Reads++
	copy(buf, d.image[off:])
	return nil
}

// WriteBlock copies buf into the disk image at the given block.
func (d *Disk) WriteBlock(block uint32, buf []byte) error {
	off := int(block) * vax.PageSize
	if off < 0 || off+len(buf) > len(d.image) {
		return fmt.Errorf("disk: write of block %d out of range", block)
	}
	d.Writes++
	copy(d.image[off:], buf)
	return nil
}

var _ cpu.Device = (*Disk)(nil)
var _ cpu.MMIOHandler = (*Disk)(nil)
