package dev

import (
	"repro/internal/cpu"
	"repro/internal/vax"
)

// Clock models the VAX interval timer (ICCS/NICR/ICR). When running,
// ICR counts up by one per processor cycle; on overflow (reaching zero
// from the reload value) the interrupt bit sets and, if enabled, an
// interrupt posts at IPL 22 through SCB vector 0xC0. Software reloads
// via NICR and acknowledges by writing ICCS with the interrupt bit.
type Clock struct {
	iccs  uint32
	nicr  uint32 // reload value (negative count, as on the VAX)
	icr   uint32
	Ticks uint64 // completed intervals since reset
}

// NewClock creates a stopped clock.
func NewClock() *Clock { return &Clock{} }

// Interval configures and starts the clock with the given period in
// cycles, interrupts enabled — convenience for tests and the VMM.
func (k *Clock) Interval(cycles uint32) {
	k.nicr = -cycles
	k.icr = k.nicr
	k.iccs = vax.ICCSRun | vax.ICCSIE
}

// Running reports whether the clock is counting.
func (k *Clock) Running() bool { return k.iccs&vax.ICCSRun != 0 }

// Tick implements cpu.Device.
func (k *Clock) Tick(c *cpu.CPU, cycles uint64) {
	if k.iccs&vax.ICCSRun == 0 {
		return
	}
	for cycles > 0 {
		remaining := uint64(-k.icr)
		if remaining == 0 {
			remaining = 1
		}
		if cycles < remaining {
			k.icr += uint32(cycles)
			return
		}
		cycles -= remaining
		k.icr = k.nicr
		k.Ticks++
		k.iccs |= vax.ICCSInt
		if k.iccs&vax.ICCSIE != 0 {
			c.RequestInterrupt(vax.IPLClock, vax.VecClock)
		}
	}
}

// ReadIPR implements cpu.IPRHandler.
func (k *Clock) ReadIPR(c *cpu.CPU, r vax.IPR) (uint32, bool) {
	switch r {
	case vax.IPRICCS:
		return k.iccs, true
	case vax.IPRNICR:
		return k.nicr, true
	case vax.IPRICR:
		return k.icr, true
	case vax.IPRTODR:
		// Time of year advances with machine cycles.
		return uint32(c.Cycles / 100), true
	}
	return 0, false
}

// WriteIPR implements cpu.IPRHandler.
func (k *Clock) WriteIPR(c *cpu.CPU, r vax.IPR, v uint32) bool {
	switch r {
	case vax.IPRICCS:
		if v&vax.ICCSInt != 0 {
			// Writing the interrupt bit acknowledges it.
			k.iccs &^= vax.ICCSInt
			c.ClearInterrupt(vax.IPLClock)
		}
		if v&vax.ICCSTransfer != 0 {
			k.icr = k.nicr
		}
		k.iccs = k.iccs&^(vax.ICCSRun|vax.ICCSIE) | v&(vax.ICCSRun|vax.ICCSIE)
		return true
	case vax.IPRNICR:
		k.nicr = v
		return true
	case vax.IPRICR:
		return true // read-only; write ignored
	case vax.IPRTODR:
		return true
	}
	return false
}

var _ cpu.Device = (*Clock)(nil)
var _ cpu.IPRHandler = (*Clock)(nil)
