// Package mmu implements VAX memory management: the three-region virtual
// address space (Figure 1 of the paper), page-table walks with process
// page tables living in S-space virtual memory, a translation buffer
// with TBIA/TBIS invalidation, protection checking, and — when enabled —
// the modify fault of Section 4.4.2 of the paper.
package mmu

import (
	"repro/internal/mem"
	"repro/internal/vax"
)

// Access distinguishes read from write references.
type Access uint8

const (
	Read Access = iota
	Write
)

func (a Access) String() string {
	if a == Write {
		return "write"
	}
	return "read"
}

// Stats counts MMU events for the experiment harness.
type Stats struct {
	Translations     uint64
	TLBHits          uint64
	TLBMisses        uint64
	TNVFaults        uint64 // translation not valid
	ProtFaults       uint64 // access violations
	ModifyFaults     uint64 // modify faults raised (modified VAX)
	MSets            uint64 // PTE<M> set by hardware (standard VAX)
	FastTranslations uint64 // hits on the no-fault TranslateFast path
}

// The translation buffer is a fixed-size direct-mapped array, sized and
// indexed like a real VAX TB (the 8800 family used direct-mapped
// translation buffers of a few hundred entries). Each set holds one
// entry tagged with the full page key (va >> PageShift, region bits
// included, so P0/P1/S pages never hit each other's entries). Validity
// is a generation number: an entry is live only when its gen matches
// the MMU's current gen, which makes TBIA an O(1) counter bump instead
// of an O(sets) sweep or a map reallocation.
const (
	tlbSets = 512
	tlbMask = tlbSets - 1
)

type tlbEntry struct {
	key uint32 // va >> PageShift (tag, region bits included)
	gen uint32 // live iff == MMU.gen
	pte vax.PTE
}

// tlbIndex folds the region bits (key bits 21-22, from va bits 30-31)
// into the set index so that congruent P0, P1 and S pages — which tiny
// guests touch constantly at the same small offsets — land in different
// sets instead of thrashing one.
func tlbIndex(key uint32) uint32 { return (key ^ key>>14) & tlbMask }

// MMU holds the memory-management state of one simulated processor.
type MMU struct {
	Mem *mem.Memory

	// Mapping registers (IPRs mirrored here by the CPU).
	Enabled    bool   // MAPEN
	P0BR, P1BR uint32 // S-space virtual addresses of the process page tables
	P0LR, P1LR uint32 // lengths in PTEs
	SBR        uint32 // physical address of the system page table
	SLR        uint32 // length in PTEs

	// ModifyFaultEnabled, when it returns true, makes a legal write to a
	// page with PTE<M> clear raise a modify fault instead of setting the
	// bit in hardware (paper Section 4.4.2). The CPU wires this to
	// "modified VAX variant and PSL<VM> set".
	ModifyFaultEnabled func() bool

	// OnTBIA and OnTBIS, when non-nil, are invoked after the translation
	// buffer is invalidated. The CPU uses them to keep its decoded-
	// instruction cache coherent with mapping changes (entries that span
	// a page boundary depend on two translations and cannot be
	// revalidated from a single TLB lookup).
	OnTBIA func()
	OnTBIS func(va uint32)

	Stats Stats

	tlb     [tlbSets]tlbEntry
	gen     uint32 // current TLB generation; entries with gen != this are dead
	scratch vax.ExcScratch
}

// New creates an MMU over the given physical memory, with mapping
// disabled (physical addressing) as after processor init.
func New(m *mem.Memory) *MMU {
	// gen starts at 1 so the zero-valued entries of a fresh array are
	// already invalid.
	return &MMU{Mem: m, gen: 1}
}

// TBIA invalidates the entire translation buffer in O(1) by retiring
// the current generation. On the (cosmically rare) counter wraparound
// the array is swept so stale entries from generation 1 cannot revive.
func (u *MMU) TBIA() {
	u.gen++
	if u.gen == 0 {
		u.tlb = [tlbSets]tlbEntry{}
		u.gen = 1
	}
	if u.OnTBIA != nil {
		u.OnTBIA()
	}
}

// TBIS invalidates the translation for the page containing va.
func (u *MMU) TBIS(va uint32) {
	key := va >> vax.PageShift
	if e := &u.tlb[tlbIndex(key)]; e.gen == u.gen && e.key == key {
		e.gen = 0
	}
	if u.OnTBIS != nil {
		u.OnTBIS(va)
	}
}

// TBISRange invalidates n consecutive pages starting at va — the
// cluster form the VMM's batched shadow fill uses after rewriting a
// run of adjacent shadow PTEs. Each page gets the full TBIS treatment
// (including the OnTBIS hook, which the decode cache relies on).
func (u *MMU) TBISRange(va, n uint32) {
	for i := uint32(0); i < n; i++ {
		u.TBIS(va + i*vax.PageSize)
	}
}

// TLBSize returns the number of live cached translations (for tests).
func (u *MMU) TLBSize() int {
	n := 0
	for i := range u.tlb {
		if u.tlb[i].gen == u.gen {
			n++
		}
	}
	return n
}

// The fault constructors recycle the MMU's scratch exception cell: the
// returned *vax.Exception is valid only until the next fault from this
// MMU (see vax.ExcScratch). Handlers that need the parameters beyond
// the current dispatch must copy them out.
func (u *MMU) accessViolation(va uint32, a Access, length, pteRef bool) *vax.Exception {
	param := uint32(0)
	if a == Write {
		param |= vax.FaultParamWrite
	}
	if length {
		param |= vax.FaultParamLength
	}
	if pteRef {
		param |= vax.FaultParamPTERef
	}
	return u.scratch.Set2(vax.VecAccessViol, vax.Fault, param, va)
}

func (u *MMU) tnvFault(va uint32, a Access, pteRef bool) *vax.Exception {
	param := uint32(0)
	if a == Write {
		param |= vax.FaultParamWrite
	}
	if pteRef {
		param |= vax.FaultParamPTERef
	}
	return u.scratch.Set2(vax.VecTransNotValid, vax.Fault, param, va)
}

func (u *MMU) modifyFault(va uint32) *vax.Exception {
	return u.scratch.Set2(vax.VecModifyFault, vax.Fault, vax.FaultParamWrite, va)
}

// pteSlot locates the PTE describing va: its address and whether that
// address is physical (system region) or an S-space virtual address
// (process regions). A false ok means a length violation.
func (u *MMU) pteSlot(va uint32) (addr uint32, physical, ok bool) {
	vpn := vax.VPN(va)
	switch vax.Region(va) {
	case vax.RegionP0:
		if vpn >= u.P0LR {
			return 0, false, false
		}
		return u.P0BR + 4*vpn, false, true
	case vax.RegionP1:
		// P1 grows downward: valid P1 addresses are the top of the
		// region, and P1LR names the number of *unmapped* low pages in
		// the full architecture. For simplicity this implementation uses
		// P1LR as the count of mapped pages at the bottom of P1, like P0.
		if vpn >= u.P1LR {
			return 0, false, false
		}
		return u.P1BR + 4*vpn, false, true
	case vax.RegionSystem:
		if vpn >= u.SLR {
			return 0, false, false
		}
		return u.SBR + 4*vpn, true, true
	}
	return 0, false, false
}

// fetchPTE reads the PTE for va, walking the system page table when the
// PTE itself lives in S-space virtual memory. Faults taken on the PTE
// reference carry FaultParamPTERef.
func (u *MMU) fetchPTE(va uint32, a Access) (vax.PTE, uint32, bool, error) {
	slot, physical, ok := u.pteSlot(va)
	if !ok {
		return 0, 0, false, u.accessViolation(va, a, true, false)
	}
	if physical {
		raw, err := u.Mem.LoadLong(slot)
		if err != nil {
			return 0, 0, false, err
		}
		return vax.PTE(raw), slot, true, nil
	}
	// The process PTE resides in S space: translate its address through
	// the system page table (one level of indirection, as on the VAX).
	if vax.Region(slot) != vax.RegionSystem {
		return 0, 0, false, u.accessViolation(va, a, true, true)
	}
	svpn := vax.VPN(slot)
	if svpn >= u.SLR {
		return 0, 0, false, u.accessViolation(va, a, true, true)
	}
	raw, err := u.Mem.LoadLong(u.SBR + 4*svpn)
	if err != nil {
		return 0, 0, false, err
	}
	spte := vax.PTE(raw)
	if spte.Prot().Reserved() {
		return 0, 0, false, u.accessViolation(va, a, false, true)
	}
	if !spte.Valid() {
		return 0, 0, false, u.tnvFault(va, a, true)
	}
	pteAddr := spte.PFN()*vax.PageSize + (slot & vax.PageMask)
	praw, err := u.Mem.LoadLong(pteAddr)
	if err != nil {
		return 0, 0, false, err
	}
	return vax.PTE(praw), pteAddr, false, nil
}

// storePTE writes back a PTE fetched by fetchPTE (used by hardware M-bit
// setting on the standard VAX).
func (u *MMU) storePTE(pteAddr uint32, pte vax.PTE) error {
	return u.Mem.StoreLong(pteAddr, uint32(pte))
}

// Translate maps a virtual address to a physical address for an access
// of the given kind from the given mode. With mapping disabled the
// address passes through unchanged. Returned errors are *vax.Exception
// (faults to be dispatched) or *mem.BusError (machine check).
func (u *MMU) Translate(va uint32, a Access, mode vax.Mode) (uint32, error) {
	if !u.Enabled {
		return va, nil
	}
	u.Stats.Translations++
	if vax.Region(va) == vax.RegionReserved {
		return 0, u.accessViolation(va, a, true, false)
	}

	key := va >> vax.PageShift
	slot := &u.tlb[tlbIndex(key)]
	var pte vax.PTE
	var pteAddr uint32
	if slot.gen == u.gen && slot.key == key {
		u.Stats.TLBHits++
		pte = slot.pte
		// The TLB does not store the PTE's memory address; hardware
		// refetches on an M-bit update (rare path).
	} else {
		u.Stats.TLBMisses++
		var err error
		pte, pteAddr, _, err = u.fetchPTE(va, a)
		if err != nil {
			return 0, err
		}
	}

	prot := pte.Prot()
	if prot.Reserved() {
		u.Stats.ProtFaults++
		return 0, u.accessViolation(va, a, false, false)
	}
	// The architecture checks protection even when PTE<V> is clear
	// (Section 3.2.1) — the property the null PTE of Section 4.3.1
	// relies on.
	allowed := prot.CanRead(mode)
	if a == Write {
		allowed = prot.CanWrite(mode)
	}
	if !allowed {
		u.Stats.ProtFaults++
		return 0, u.accessViolation(va, a, false, false)
	}
	if !pte.Valid() {
		u.Stats.TNVFaults++
		u.TBIS(va)
		return 0, u.tnvFault(va, a, false)
	}

	if a == Write && !pte.Modified() {
		if u.ModifyFaultEnabled != nil && u.ModifyFaultEnabled() {
			// Modified VAX: deliver a modify fault; software must set
			// PTE<M> and retry (Section 4.4.2).
			u.Stats.ModifyFaults++
			u.TBIS(va)
			return 0, u.modifyFault(va)
		}
		// Standard VAX: hardware sets PTE<M> without a trap.
		u.Stats.MSets++
		if pteAddr == 0 {
			// TLB hit: refetch to learn the PTE's address.
			var err error
			pte, pteAddr, _, err = u.fetchPTE(va, a)
			if err != nil {
				return 0, err
			}
		}
		pte = pte.WithModify(true)
		if err := u.storePTE(pteAddr, pte); err != nil {
			return 0, err
		}
	}

	*slot = tlbEntry{key: key, gen: u.gen, pte: pte}
	return pte.PFN()*vax.PageSize + (va & vax.PageMask), nil
}

// TranslateFast is the inlined TLB-hit fast path: it maps va to a
// physical address only when it can do so without walking page tables,
// without faulting, and without side effects — mapping disabled, or a
// TLB hit whose protection admits the access and (for writes) whose
// PTE<M> is already set. Any other case returns ok == false without
// touching the statistics, and the caller falls back to Translate,
// which performs the walk, counts the event, and boxes the fault. On
// success no error value exists at all, so the hot path allocates
// nothing.
func (u *MMU) TranslateFast(va uint32, a Access, mode vax.Mode) (uint32, bool) {
	if !u.Enabled {
		return va, true
	}
	key := va >> vax.PageShift
	e := &u.tlb[tlbIndex(key)]
	if e.gen != u.gen || e.key != key {
		return 0, false
	}
	pte := e.pte
	prot := pte.Prot()
	if prot.Reserved() || !pte.Valid() {
		return 0, false
	}
	if a == Write {
		if !prot.CanWrite(mode) || !pte.Modified() {
			return 0, false
		}
	} else if !prot.CanRead(mode) {
		return 0, false
	}
	u.Stats.Translations++
	u.Stats.TLBHits++
	u.Stats.FastTranslations++
	return pte.PFN()*vax.PageSize + (va & vax.PageMask), true
}

// ProbePTE fetches (without caching) the PTE governing va, for the PROBE
// and PROBEVM instructions. The bool reports whether the page is within
// the region length; out-of-length probes are simply inaccessible rather
// than faulting (PROBE sets a condition code instead).
func (u *MMU) ProbePTE(va uint32) (vax.PTE, bool, error) {
	if !u.Enabled {
		return vax.NewPTE(true, vax.ProtUW, true, vax.VPN(va)), true, nil
	}
	if vax.Region(va) == vax.RegionReserved {
		return 0, false, nil
	}
	pte, _, _, err := u.fetchPTE(va, Read)
	if err != nil {
		if _, isExc := err.(*vax.Exception); isExc {
			// A fault on the PTE reference itself means the page is not
			// accessible as far as PROBE is concerned.
			return 0, false, nil
		}
		return 0, false, err
	}
	return pte, true, nil
}

// Probe implements the accessibility test of PROBER/PROBEW on the
// standard VAX: protection is checked against mode regardless of the
// valid bit.
func (u *MMU) Probe(va uint32, a Access, mode vax.Mode) (bool, error) {
	pte, inLen, err := u.ProbePTE(va)
	if err != nil {
		return false, err
	}
	if !inLen {
		return false, nil
	}
	prot := pte.Prot()
	if prot.Reserved() {
		return false, nil
	}
	if a == Write {
		return prot.CanWrite(mode), nil
	}
	return prot.CanRead(mode), nil
}

// SetPTEModify sets PTE<M> for the page containing va directly in the
// page table (used by modify-fault handlers) and drops any stale TLB
// entry.
func (u *MMU) SetPTEModify(va uint32) error {
	pte, pteAddr, _, err := u.fetchPTE(va, Read)
	if err != nil {
		return err
	}
	if err := u.storePTE(pteAddr, pte.WithModify(true)); err != nil {
		return err
	}
	u.TBIS(va)
	return nil
}
