package mmu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/vax"
)

// The array TLB replaced an unbounded map keyed by page-base VA (an
// idealized fully-associative buffer). These tests measure what the
// direct-mapped geometry costs: oldMapTLB replays each reference
// stream against the old model so the two hit rates can be reported
// side by side, and the conflict cases check that an eviction only
// ever costs a re-walk, never a wrong translation.

// oldMapTLB models the previous map-backed TLB's hit accounting.
type oldMapTLB struct {
	entries map[uint32]bool
	hits    uint64
	misses  uint64
}

func newOldMapTLB() *oldMapTLB { return &oldMapTLB{entries: map[uint32]bool{}} }

func (o *oldMapTLB) access(va uint32) {
	page := va &^ vax.PageMask
	if o.entries[page] {
		o.hits++
	} else {
		o.misses++
		o.entries[page] = true
	}
}

func (o *oldMapTLB) rate() float64 {
	return float64(o.hits) / float64(o.hits+o.misses)
}

// buildP0System extends buildSystem with a 1024-entry P0 page table in
// S pages 8..15, every P0 page mapped to p0Frame.
func buildP0System(t *testing.T, p0Frame uint32) (*MMU, *mem.Memory) {
	t.Helper()
	u, m := buildSystem(t, 16, vax.ProtUW)
	u.P0BR = vax.SystemBase + 8*vax.PageSize
	u.P0LR = 1024
	// S page 8 maps to frame 24 (buildSystem: S page i -> frame 16+i),
	// so the table occupies frames 24..31 physically.
	base := uint32(24 * vax.PageSize)
	for vpn := uint32(0); vpn < 1024; vpn++ {
		pte := vax.NewPTE(true, vax.ProtUW, false, p0Frame)
		if err := m.StoreLong(base+4*vpn, uint32(pte)); err != nil {
			t.Fatal(err)
		}
	}
	return u, m
}

func hitRate(u *MMU) float64 {
	return float64(u.Stats.TLBHits) / float64(u.Stats.TLBHits+u.Stats.TLBMisses)
}

// TestTLBHitRateArrayVsOldMap replays three reference streams through
// the array TLB and the old map model and reports both hit rates. On
// working sets that fit (the common case for the paper's guests) the
// direct-mapped array must match the fully-associative map exactly.
func TestTLBHitRateArrayVsOldMap(t *testing.T) {
	run := func(name string, vas []uint32, wantEqual bool) (arr, old float64) {
		u, _ := buildP0System(t, 40)
		o := newOldMapTLB()
		for _, va := range vas {
			if _, err := u.Translate(va, Read, vax.Kernel); err != nil {
				t.Fatalf("%s: translate %#x: %v", name, va, err)
			}
			o.access(va)
		}
		arr, old = hitRate(u), o.rate()
		t.Logf("%-14s array TLB hit rate %.4f, old map TLB hit rate %.4f", name, arr, old)
		if wantEqual && arr != old {
			t.Errorf("%s: array hit rate %.4f != map hit rate %.4f (working set fits; no conflicts expected)",
				name, arr, old)
		}
		return arr, old
	}

	// Looping working set: 16 S pages touched 100 times over.
	var loop []uint32
	for it := 0; it < 100; it++ {
		for p := uint32(0); p < 16; p++ {
			loop = append(loop, vax.SystemBase+p*vax.PageSize+uint32(it%vax.PageSize))
		}
	}
	arr, _ := run("loop-16", loop, true)
	if arr < 0.98 {
		t.Errorf("loop-16: array hit rate %.4f, want >= 0.98", arr)
	}

	// Mixed-region sweep: S and P0 pages interleaved, two passes — the
	// second pass hits everywhere in both models.
	var sweep []uint32
	for pass := 0; pass < 2; pass++ {
		for p := uint32(0); p < 16; p++ {
			sweep = append(sweep, vax.SystemBase+p*vax.PageSize)
			sweep = append(sweep, p*vax.PageSize) // P0
		}
	}
	run("mixed-sweep", sweep, true)

	// Adversarial conflict pair: P0 pages 10 and 522 index the same set
	// (522 & 511 == 10), so alternating between them misses every time
	// in the array while the map keeps both — the cost of direct mapping.
	var conflict []uint32
	for i := 0; i < 100; i++ {
		conflict = append(conflict, 10*vax.PageSize, 522*vax.PageSize)
	}
	arrC, oldC := run("conflict-pair", conflict, false)
	if arrC >= oldC {
		t.Errorf("conflict-pair: array hit rate %.4f not below map hit rate %.4f — pages 10/522 no longer conflict; update the adversarial pair for the current tlbIndex",
			arrC, oldC)
	}
}

// TestTLBConflictEvictionStaysCorrect: a set conflict costs a re-walk,
// never a wrong physical address.
func TestTLBConflictEvictionStaysCorrect(t *testing.T) {
	u, m := buildP0System(t, 40)
	// Distinguish the conflicting pages by frame.
	base := uint32(24 * vax.PageSize)
	if err := m.StoreLong(base+4*522, uint32(vax.NewPTE(true, vax.ProtUW, false, 41))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		pa, err := u.Translate(10*vax.PageSize+3, Read, vax.Kernel)
		if err != nil || pa != 40*vax.PageSize+3 {
			t.Fatalf("page 10: pa=%#x err=%v", pa, err)
		}
		pa, err = u.Translate(522*vax.PageSize+7, Read, vax.Kernel)
		if err != nil || pa != 41*vax.PageSize+7 {
			t.Fatalf("page 522: pa=%#x err=%v", pa, err)
		}
	}
	if u.Stats.TLBHits != 0 {
		t.Errorf("TLBHits = %d; the conflict pair should evict each other every time", u.Stats.TLBHits)
	}
}

// TestTLBNoRegionAliasing: congruent page numbers in different regions
// are distinct translations — the tag keeps the region bits, so S page
// 2 and P0 page 2 can never satisfy each other's lookups.
func TestTLBNoRegionAliasing(t *testing.T) {
	u, _ := buildP0System(t, 40)
	pa, err := u.Translate(vax.SystemBase+2*vax.PageSize, Read, vax.Kernel)
	if err != nil || pa != 18*vax.PageSize {
		t.Fatalf("S page 2: pa=%#x err=%v", pa, err)
	}
	pa, err = u.Translate(2*vax.PageSize, Read, vax.Kernel)
	if err != nil || pa != 40*vax.PageSize {
		t.Fatalf("P0 page 2: pa=%#x err=%v", pa, err)
	}
	if u.Stats.TLBHits != 0 {
		t.Error("P0 lookup hit the S entry: region bits lost from the tag")
	}
	// Both entries coexist (the index fold spreads regions apart).
	if u.TLBSize() != 2 {
		t.Errorf("TLBSize = %d, want 2", u.TLBSize())
	}
}

// TestTBIAGenerationWraparound: TBIA is a counter bump, and on the
// wraparound to zero the array is swept so entries from a retired
// generation cannot come back to life.
func TestTBIAGenerationWraparound(t *testing.T) {
	u, _ := buildSystem(t, 4, vax.ProtUW)
	va := vax.SystemBase + vax.PageSize
	u.gen = ^uint32(0) // next TBIA wraps
	if _, err := u.Translate(va, Read, vax.Kernel); err != nil {
		t.Fatal(err)
	}
	if u.TLBSize() != 1 {
		t.Fatalf("TLBSize = %d before wraparound", u.TLBSize())
	}
	u.TBIA()
	if u.gen != 1 {
		t.Errorf("gen = %d after wraparound, want 1", u.gen)
	}
	if u.TLBSize() != 0 {
		t.Error("entry from generation 2^32-1 survived the wraparound sweep")
	}
	misses := u.Stats.TLBMisses
	if _, err := u.Translate(va, Read, vax.Kernel); err != nil {
		t.Fatal(err)
	}
	if u.Stats.TLBMisses != misses+1 {
		t.Error("lookup after wraparound TBIA did not re-walk")
	}
}
