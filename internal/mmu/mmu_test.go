package mmu

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/vax"
)

// buildSystem creates a memory with a system page table at sptBase
// mapping nSys pages of S space identity-style: S page i -> frame
// frameBase+i with protection prot.
func buildSystem(t *testing.T, nSys uint32, prot vax.Protection) (*MMU, *mem.Memory) {
	t.Helper()
	m := mem.New(256 * vax.PageSize)
	const sptBase = 0x1000 // frame 8
	for i := uint32(0); i < nSys; i++ {
		pte := vax.NewPTE(true, prot, false, 16+i)
		if err := m.StoreLong(sptBase+4*i, uint32(pte)); err != nil {
			t.Fatal(err)
		}
	}
	u := New(m)
	u.Enabled = true
	u.SBR = sptBase
	u.SLR = nSys
	return u, m
}

func TestDisabledPassThrough(t *testing.T) {
	u := New(mem.New(vax.PageSize))
	pa, err := u.Translate(0x123, Write, vax.User)
	if err != nil || pa != 0x123 {
		t.Fatalf("pass-through failed: %v %#x", err, pa)
	}
}

func TestSystemTranslation(t *testing.T) {
	u, _ := buildSystem(t, 4, vax.ProtUW)
	pa, err := u.Translate(vax.SystemBase+2*vax.PageSize+7, Read, vax.User)
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(18*vax.PageSize + 7)
	if pa != want {
		t.Errorf("pa = %#x, want %#x", pa, want)
	}
}

func TestSystemLengthViolation(t *testing.T) {
	u, _ := buildSystem(t, 4, vax.ProtUW)
	_, err := u.Translate(vax.SystemBase+5*vax.PageSize, Read, vax.Kernel)
	exc, ok := err.(*vax.Exception)
	if !ok || exc.Vector != vax.VecAccessViol {
		t.Fatalf("want access violation, got %v", err)
	}
	if exc.Params[0]&vax.FaultParamLength == 0 {
		t.Error("length bit not set")
	}
}

func TestProtectionFault(t *testing.T) {
	u, _ := buildSystem(t, 4, vax.ProtURKW)
	// URKW: user may read, only kernel may write.
	if _, err := u.Translate(vax.SystemBase, Read, vax.User); err != nil {
		t.Errorf("user read should pass: %v", err)
	}
	_, err := u.Translate(vax.SystemBase, Write, vax.User)
	exc, ok := err.(*vax.Exception)
	if !ok || exc.Vector != vax.VecAccessViol {
		t.Fatalf("want access violation, got %v", err)
	}
	if exc.Params[0]&vax.FaultParamWrite == 0 {
		t.Error("write bit not set in fault param")
	}
	if _, err := u.Translate(vax.SystemBase, Write, vax.Kernel); err != nil {
		t.Errorf("kernel write should pass: %v", err)
	}
}

func TestTranslationNotValid(t *testing.T) {
	u, m := buildSystem(t, 4, vax.ProtUW)
	// Invalidate S page 1.
	pte := vax.NewPTE(false, vax.ProtUW, false, 17)
	if err := m.StoreLong(u.SBR+4, uint32(pte)); err != nil {
		t.Fatal(err)
	}
	_, err := u.Translate(vax.SystemBase+vax.PageSize, Read, vax.User)
	exc, ok := err.(*vax.Exception)
	if !ok || exc.Vector != vax.VecTransNotValid {
		t.Fatalf("want TNV, got %v", err)
	}
	if exc.Params[1] != vax.SystemBase+vax.PageSize {
		t.Errorf("faulting va = %#x", exc.Params[1])
	}
}

// TestProtCheckedEvenWhenInvalid verifies the architectural rule the
// null PTE depends on: protection is checked before validity, so an
// invalid page with NA protection takes an access violation, not TNV,
// while an invalid page with UW protection takes TNV.
func TestProtCheckedEvenWhenInvalid(t *testing.T) {
	u, m := buildSystem(t, 4, vax.ProtUW)
	if err := m.StoreLong(u.SBR+0, uint32(vax.NewPTE(false, vax.ProtNA, false, 16))); err != nil {
		t.Fatal(err)
	}
	_, err := u.Translate(vax.SystemBase, Read, vax.Kernel)
	if exc, ok := err.(*vax.Exception); !ok || exc.Vector != vax.VecAccessViol {
		t.Fatalf("want access violation, got %v", err)
	}
	if err := m.StoreLong(u.SBR+0, uint32(vax.NewPTE(false, vax.ProtUW, false, 16))); err != nil {
		t.Fatal(err)
	}
	_, err = u.Translate(vax.SystemBase, Read, vax.Kernel)
	if exc, ok := err.(*vax.Exception); !ok || exc.Vector != vax.VecTransNotValid {
		t.Fatalf("want TNV, got %v", err)
	}
}

func TestHardwareSetsModifyBit(t *testing.T) {
	u, m := buildSystem(t, 4, vax.ProtUW)
	va := vax.SystemBase + vax.PageSize
	if _, err := u.Translate(va, Read, vax.User); err != nil {
		t.Fatal(err)
	}
	raw, _ := m.LoadLong(u.SBR + 4)
	if vax.PTE(raw).Modified() {
		t.Fatal("M set by read")
	}
	if _, err := u.Translate(va, Write, vax.User); err != nil {
		t.Fatal(err)
	}
	raw, _ = m.LoadLong(u.SBR + 4)
	if !vax.PTE(raw).Modified() {
		t.Error("standard VAX must set M in hardware on write")
	}
	if u.Stats.MSets != 1 {
		t.Errorf("MSets = %d", u.Stats.MSets)
	}
}

func TestModifyFaultMode(t *testing.T) {
	u, m := buildSystem(t, 4, vax.ProtUW)
	u.ModifyFaultEnabled = func() bool { return true }
	va := vax.SystemBase
	_, err := u.Translate(va, Write, vax.User)
	exc, ok := err.(*vax.Exception)
	if !ok || exc.Vector != vax.VecModifyFault {
		t.Fatalf("want modify fault, got %v", err)
	}
	raw, _ := m.LoadLong(u.SBR)
	if vax.PTE(raw).Modified() {
		t.Error("modify fault must not set M itself")
	}
	// Software sets M explicitly, then the retried write succeeds.
	if err := u.SetPTEModify(va); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(va, Write, vax.User); err != nil {
		t.Errorf("retry after SetPTEModify failed: %v", err)
	}
	if u.Stats.ModifyFaults != 1 {
		t.Errorf("ModifyFaults = %d", u.Stats.ModifyFaults)
	}
	// Reads never modify-fault.
	if _, err := u.Translate(va+vax.PageSize, Read, vax.User); err != nil {
		t.Errorf("read must not modify-fault: %v", err)
	}
}

func TestTLBCachingAndInvalidate(t *testing.T) {
	u, m := buildSystem(t, 4, vax.ProtUW)
	va := vax.SystemBase
	if _, err := u.Translate(va, Read, vax.User); err != nil {
		t.Fatal(err)
	}
	if u.Stats.TLBMisses != 1 || u.TLBSize() != 1 {
		t.Fatalf("miss=%d size=%d", u.Stats.TLBMisses, u.TLBSize())
	}
	if _, err := u.Translate(va+8, Read, vax.User); err != nil {
		t.Fatal(err)
	}
	if u.Stats.TLBHits != 1 {
		t.Errorf("hits = %d", u.Stats.TLBHits)
	}
	// Change the PTE under the TLB: without invalidation the stale
	// translation is used (architecturally allowed); after TBIS the new
	// one is fetched.
	if err := m.StoreLong(u.SBR, uint32(vax.NewPTE(true, vax.ProtUW, true, 20))); err != nil {
		t.Fatal(err)
	}
	pa, _ := u.Translate(va, Read, vax.User)
	if pa != 16*vax.PageSize {
		t.Errorf("expected stale translation, got %#x", pa)
	}
	u.TBIS(va)
	pa, _ = u.Translate(va, Read, vax.User)
	if pa != 20*vax.PageSize {
		t.Errorf("after TBIS pa = %#x, want %#x", pa, 20*vax.PageSize)
	}
	u.TBIA()
	if u.TLBSize() != 0 {
		t.Error("TBIA did not clear")
	}
}

func TestProcessSpaceDoubleWalk(t *testing.T) {
	u, m := buildSystem(t, 8, vax.ProtUW)
	// Place a P0 page table in S page 3 (frame 19): P0 page 0 -> frame 30.
	p0va := vax.SystemBase + 3*vax.PageSize
	u.P0BR = p0va
	u.P0LR = 2
	if err := m.StoreLong(19*vax.PageSize, uint32(vax.NewPTE(true, vax.ProtUW, false, 30))); err != nil {
		t.Fatal(err)
	}
	pa, err := u.Translate(0x00000005, Read, vax.User)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 30*vax.PageSize+5 {
		t.Errorf("pa = %#x", pa)
	}
	// P0 length violation.
	_, err = u.Translate(2*vax.PageSize, Read, vax.User)
	if exc, ok := err.(*vax.Exception); !ok || exc.Vector != vax.VecAccessViol ||
		exc.Params[0]&vax.FaultParamLength == 0 {
		t.Fatalf("want length violation, got %v", err)
	}
	// Invalid process PTE -> TNV without PTERef.
	if err := m.StoreLong(19*vax.PageSize+4, uint32(vax.NewPTE(false, vax.ProtUW, false, 31))); err != nil {
		t.Fatal(err)
	}
	_, err = u.Translate(vax.PageSize, Read, vax.User)
	if exc, ok := err.(*vax.Exception); !ok || exc.Vector != vax.VecTransNotValid ||
		exc.Params[0]&vax.FaultParamPTERef != 0 {
		t.Fatalf("want plain TNV, got %v", err)
	}
	// Invalid *system* PTE underneath the P0 table -> TNV with PTERef.
	if err := m.StoreLong(u.SBR+4*3, uint32(vax.NewPTE(false, vax.ProtUW, false, 19))); err != nil {
		t.Fatal(err)
	}
	u.TBIA()
	_, err = u.Translate(0, Read, vax.User)
	if exc, ok := err.(*vax.Exception); !ok || exc.Vector != vax.VecTransNotValid ||
		exc.Params[0]&vax.FaultParamPTERef == 0 {
		t.Fatalf("want TNV with PTERef, got %v", err)
	}
}

func TestP1Region(t *testing.T) {
	u, m := buildSystem(t, 8, vax.ProtUW)
	u.P1BR = vax.SystemBase + 4*vax.PageSize
	u.P1LR = 1
	if err := m.StoreLong(20*vax.PageSize, uint32(vax.NewPTE(true, vax.ProtUW, false, 40))); err != nil {
		t.Fatal(err)
	}
	pa, err := u.Translate(vax.P1Base+9, Read, vax.User)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 40*vax.PageSize+9 {
		t.Errorf("pa = %#x", pa)
	}
}

func TestReservedRegionFaults(t *testing.T) {
	u, _ := buildSystem(t, 4, vax.ProtUW)
	_, err := u.Translate(0xC0000000, Read, vax.Kernel)
	if exc, ok := err.(*vax.Exception); !ok || exc.Vector != vax.VecAccessViol {
		t.Fatalf("want access violation, got %v", err)
	}
}

func TestReservedProtectionCode(t *testing.T) {
	u, m := buildSystem(t, 4, vax.ProtUW)
	if err := m.StoreLong(u.SBR, uint32(vax.NewPTE(true, vax.ProtRsvd, false, 16))); err != nil {
		t.Fatal(err)
	}
	_, err := u.Translate(vax.SystemBase, Read, vax.Kernel)
	if exc, ok := err.(*vax.Exception); !ok || exc.Vector != vax.VecAccessViol {
		t.Fatalf("want access violation, got %v", err)
	}
}

func TestProbe(t *testing.T) {
	u, m := buildSystem(t, 4, vax.ProtURKW)
	ok, err := u.Probe(vax.SystemBase, Read, vax.User)
	if err != nil || !ok {
		t.Errorf("user read probe: %t %v", ok, err)
	}
	ok, _ = u.Probe(vax.SystemBase, Write, vax.User)
	if ok {
		t.Error("user write probe should fail on URKW")
	}
	ok, _ = u.Probe(vax.SystemBase, Write, vax.Kernel)
	if !ok {
		t.Error("kernel write probe should pass")
	}
	// Probe checks protection even for an invalid PTE.
	if err := m.StoreLong(u.SBR, uint32(vax.NewPTE(false, vax.ProtURKW, false, 16))); err != nil {
		t.Fatal(err)
	}
	u.TBIA()
	ok, _ = u.Probe(vax.SystemBase, Read, vax.User)
	if !ok {
		t.Error("probe must check protection regardless of valid bit")
	}
	// Out of length: inaccessible, no fault.
	ok, err = u.Probe(vax.SystemBase+100*vax.PageSize, Read, vax.Kernel)
	if err != nil || ok {
		t.Errorf("out-of-length probe: %t %v", ok, err)
	}
}

func TestProbePTEDisabled(t *testing.T) {
	u := New(mem.New(vax.PageSize))
	pte, ok, err := u.ProbePTE(0x40)
	if err != nil || !ok || !pte.Valid() {
		t.Errorf("disabled-probe: %v %t %s", err, ok, pte)
	}
}

// Property: translation is a function — two identical reads give the
// same frame, and the offset within the page is preserved.
func TestTranslateDeterministicProperty(t *testing.T) {
	u, _ := buildSystem(t, 8, vax.ProtUW)
	f := func(page uint8, off uint16) bool {
		va := vax.SystemBase + uint32(page%8)*vax.PageSize + uint32(off%vax.PageSize)
		pa1, err1 := u.Translate(va, Read, vax.User)
		pa2, err2 := u.Translate(va, Read, vax.User)
		if err1 != nil || err2 != nil {
			return false
		}
		return pa1 == pa2 && pa1&vax.PageMask == va&vax.PageMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusErrorOnBadSBR(t *testing.T) {
	u := New(mem.New(vax.PageSize))
	u.Enabled = true
	u.SBR = 0x10000000
	u.SLR = 4
	_, err := u.Translate(vax.SystemBase, Read, vax.Kernel)
	if _, ok := err.(*mem.BusError); !ok {
		t.Fatalf("want BusError, got %v", err)
	}
}
