package mmu

// The MMU's trace.Source implementation (structural — this package
// does not import trace). Counter names are part of the observable
// surface; keep them stable.

// Name identifies the memory-management counter source.
func (u *MMU) Name() string { return "mmu" }

// Counters emits the translation counters.
func (u *MMU) Counters(emit func(name string, v uint64)) {
	s := u.Stats
	emit("translations", s.Translations)
	emit("tlb_hits", s.TLBHits)
	emit("tlb_misses", s.TLBMisses)
	emit("tnv_faults", s.TNVFaults)
	emit("prot_faults", s.ProtFaults)
	emit("modify_faults", s.ModifyFaults)
	emit("m_sets", s.MSets)
	emit("fast_translations", s.FastTranslations)
}
