// Package mem provides the physical memory of a simulated VAX system:
// byte-addressable, little-endian storage with page-frame bookkeeping.
// A bus error on a nonexistent physical address is reported as an error
// value so the CPU can turn it into a machine check (or, inside a VM,
// the VMM can halt the VM — paper Section 5, "Hardware errors").
package mem

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/vax"
)

// Memory is a flat physical address space.
type Memory struct {
	data []byte
}

// BusError reports a reference to nonexistent physical memory.
type BusError struct {
	Addr  uint32
	Write bool
}

func (e *BusError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("bus error: %s of nonexistent physical address %#x", op, e.Addr)
}

// New creates a memory of the given size, rounded up to a whole number
// of pages.
func New(size uint32) *Memory {
	pages := (size + vax.PageSize - 1) / vax.PageSize
	if pages == 0 {
		pages = 1
	}
	size = pages * vax.PageSize
	pool.mu.Lock()
	if bufs := pool.bufs[size]; len(bufs) > 0 {
		buf := bufs[len(bufs)-1]
		pool.bufs[size] = bufs[:len(bufs)-1]
		pool.mu.Unlock()
		return &Memory{data: buf}
	}
	pool.mu.Unlock()
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.data)) }

// Pages returns the number of page frames.
func (m *Memory) Pages() uint32 { return uint32(len(m.data)) / vax.PageSize }

// Contains reports whether [addr, addr+n) lies within memory.
func (m *Memory) Contains(addr, n uint32) bool {
	return addr <= m.Size() && n <= m.Size()-addr
}

// LoadByte reads one byte of physical memory.
func (m *Memory) LoadByte(addr uint32) (byte, error) {
	if !m.Contains(addr, 1) {
		return 0, &BusError{Addr: addr}
	}
	return m.data[addr], nil
}

// StoreByte writes one byte of physical memory.
func (m *Memory) StoreByte(addr uint32, v byte) error {
	if !m.Contains(addr, 1) {
		return &BusError{Addr: addr, Write: true}
	}
	m.data[addr] = v
	return nil
}

// LoadWord reads a little-endian 16-bit word.
func (m *Memory) LoadWord(addr uint32) (uint16, error) {
	if !m.Contains(addr, 2) {
		return 0, &BusError{Addr: addr}
	}
	return binary.LittleEndian.Uint16(m.data[addr:]), nil
}

// StoreWord writes a little-endian 16-bit word.
func (m *Memory) StoreWord(addr uint32, v uint16) error {
	if !m.Contains(addr, 2) {
		return &BusError{Addr: addr, Write: true}
	}
	binary.LittleEndian.PutUint16(m.data[addr:], v)
	return nil
}

// LoadLong reads a little-endian 32-bit longword.
func (m *Memory) LoadLong(addr uint32) (uint32, error) {
	if !m.Contains(addr, 4) {
		return 0, &BusError{Addr: addr}
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), nil
}

// StoreLong writes a little-endian 32-bit longword.
func (m *Memory) StoreLong(addr uint32, v uint32) error {
	if !m.Contains(addr, 4) {
		return &BusError{Addr: addr, Write: true}
	}
	binary.LittleEndian.PutUint32(m.data[addr:], v)
	return nil
}

// LoadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) LoadBytes(addr, n uint32) ([]byte, error) {
	if !m.Contains(addr, n) {
		return nil, &BusError{Addr: addr}
	}
	out := make([]byte, n)
	copy(out, m.data[addr:addr+n])
	return out, nil
}

// LoadBytesInto copies len(b) bytes starting at addr into b without
// allocating (for steady-state I/O paths).
func (m *Memory) LoadBytesInto(addr uint32, b []byte) error {
	if !m.Contains(addr, uint32(len(b))) {
		return &BusError{Addr: addr}
	}
	copy(b, m.data[addr:])
	return nil
}

// StoreBytes copies b into memory starting at addr.
func (m *Memory) StoreBytes(addr uint32, b []byte) error {
	if !m.Contains(addr, uint32(len(b))) {
		return &BusError{Addr: addr, Write: true}
	}
	copy(m.data[addr:], b)
	return nil
}

// Window returns the live backing slice for [addr, addr+n): no copy,
// valid until Release. Intended for bulk scanners (the COW alias sweep
// walks whole shadow tables) where per-longword Load calls would pay a
// bounds check and a decode per entry.
func (m *Memory) Window(addr, n uint32) ([]byte, error) {
	if !m.Contains(addr, n) {
		return nil, &BusError{Addr: addr}
	}
	return m.data[addr : addr+n : addr+n], nil
}

// CopyPage copies page frame src into page frame dst — the data
// movement of one COW break.
func (m *Memory) CopyPage(dst, src uint32) error {
	da, sa := dst*vax.PageSize, src*vax.PageSize
	if !m.Contains(da, vax.PageSize) {
		return &BusError{Addr: da, Write: true}
	}
	if !m.Contains(sa, vax.PageSize) {
		return &BusError{Addr: sa}
	}
	copy(m.data[da:da+vax.PageSize], m.data[sa:sa+vax.PageSize])
	return nil
}

// ZeroPage clears the page frame pfn.
func (m *Memory) ZeroPage(pfn uint32) error {
	return m.ZeroRun(pfn, 1)
}

// ZeroRun clears n consecutive page frames starting at pfn in one
// memclr — the bulk path behind page-frame allocation, where a
// per-byte loop shows up directly in VM-creation latency.
func (m *Memory) ZeroRun(pfn, n uint32) error {
	addr := pfn * vax.PageSize
	if !m.Contains(addr, n*vax.PageSize) {
		return &BusError{Addr: addr, Write: true}
	}
	clear(m.data[addr : addr+n*vax.PageSize])
	return nil
}

// FillLong fills n consecutive longwords starting at addr (which must
// be longword-aligned) with v. This is the bulk path behind shadow
// page-table initialization and clear-on-reuse: filling a 2048-entry
// process slot one StoreLong at a time costs four bounds checks and an
// encode per entry, while FillLong seeds 4 bytes and doubles.
func (m *Memory) FillLong(addr, n, v uint32) error {
	if n == 0 {
		return nil
	}
	if addr&3 != 0 || !m.Contains(addr, n*4) {
		return &BusError{Addr: addr, Write: true}
	}
	region := m.data[addr : addr+n*4]
	binary.LittleEndian.PutUint32(region, v)
	for filled := 4; filled < len(region); filled *= 2 {
		copy(region[filled:], region[:filled])
	}
	return nil
}

// The backing-store pool. A monitor's physical memory is by far the
// largest allocation in the simulator (16 MB per VMM instance), and the
// experiment harness creates and discards machines by the hundred; the
// pool recycles those buffers. Buffers enter the pool fully zeroed
// (Release zeroes the dirty extent the caller declares), so New can
// hand them out without touching every byte — an invariant maintained
// by induction: fresh make() is zero, and honest dirty extents keep
// pooled buffers zero.
var pool = struct {
	mu   sync.Mutex
	bufs map[uint32][][]byte
}{bufs: make(map[uint32][][]byte)}

// poolMaxPerSize bounds how many buffers of one size the pool retains;
// beyond that, Release lets the garbage collector have them.
const poolMaxPerSize = 4

// Release returns the memory's backing store to the pool, zeroing the
// first dirty bytes (rounded up internally as needed). The caller
// asserts that no byte at or beyond dirty was ever written; a false
// assertion corrupts a future machine, so callers must be conservative.
// After Release the Memory is empty: every access returns a BusError.
// Release is idempotent.
func (m *Memory) Release(dirty uint32) {
	buf := m.data
	if buf == nil {
		return
	}
	m.data = nil
	if dirty > uint32(len(buf)) {
		dirty = uint32(len(buf))
	}
	clear(buf[:dirty])
	size := uint32(len(buf))
	pool.mu.Lock()
	if len(pool.bufs[size]) < poolMaxPerSize {
		pool.bufs[size] = append(pool.bufs[size], buf)
	}
	pool.mu.Unlock()
}
