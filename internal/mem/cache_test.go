package mem

import (
	"testing"

	"repro/internal/vax"
)

// drainPool empties the global pool of buffers of the given size so a
// test starts from a known state (other tests share the pool).
func drainPool(size uint32) {
	pool.mu.Lock()
	delete(pool.bufs, size)
	pool.mu.Unlock()
}

// TestCacheReusesReleasedBuffer: release-then-new of the same size is
// served locally, and the recycled buffer comes back fully zero even
// after guest writes.
func TestCacheReusesReleasedBuffer(t *testing.T) {
	const size = 8 * vax.PageSize
	drainPool(size)
	c := NewCache()
	m := c.New(size)
	if err := m.StoreLong(3*vax.PageSize+4, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	data := &m.data[0]
	c.Release(m, size)
	if c.Len() != 1 {
		t.Fatalf("cache holds %d buffers after release, want 1", c.Len())
	}
	m2 := c.New(size)
	if &m2.data[0] != data {
		t.Error("cache did not reuse the released buffer")
	}
	v, err := m2.LoadLong(3*vax.PageSize + 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("recycled buffer not zeroed: read %#x", v)
	}
	if c.Len() != 0 {
		t.Errorf("cache holds %d buffers after reuse, want 0", c.Len())
	}
}

// TestCacheSpillBound: the local cache keeps at most cacheMaxPerSize
// buffers of one size; extras spill to the global pool.
func TestCacheSpillBound(t *testing.T) {
	const size = 2 * vax.PageSize
	drainPool(size)
	c := NewCache()
	mems := make([]*Memory, cacheMaxPerSize+2)
	for i := range mems {
		mems[i] = &Memory{data: make([]byte, size)}
	}
	for _, m := range mems {
		c.Release(m, 0)
	}
	if c.Len() != cacheMaxPerSize {
		t.Errorf("cache holds %d buffers, bound is %d", c.Len(), cacheMaxPerSize)
	}
	pool.mu.Lock()
	spilled := len(pool.bufs[size])
	pool.mu.Unlock()
	if spilled != 2 {
		t.Errorf("global pool got %d spilled buffers, want 2", spilled)
	}
}

// TestCacheBatchRefill: a local miss pulls a batch from the global
// pool — one buffer returned, the rest stashed so the next miss of the
// same size stays local.
func TestCacheBatchRefill(t *testing.T) {
	const size = 4 * vax.PageSize
	drainPool(size)
	for i := 0; i < 3; i++ {
		(&Memory{data: make([]byte, size)}).Release(0)
	}
	c := NewCache()
	m := c.New(size)
	if m.Size() != size {
		t.Fatalf("got %d bytes, want %d", m.Size(), size)
	}
	if c.Len() != cacheRefillBatch-1 {
		t.Errorf("cache stashed %d buffers on refill, want %d", c.Len(), cacheRefillBatch-1)
	}
	pool.mu.Lock()
	left := len(pool.bufs[size])
	pool.mu.Unlock()
	if left != 3-cacheRefillBatch {
		t.Errorf("global pool has %d buffers after refill, want %d", left, 3-cacheRefillBatch)
	}
}

// TestCacheDrain: Drain moves everything back to the global pool and
// empties the cache.
func TestCacheDrain(t *testing.T) {
	const size = vax.PageSize
	drainPool(size)
	c := NewCache()
	c.Release(&Memory{data: make([]byte, size)}, 0)
	c.Release(&Memory{data: make([]byte, size)}, 0)
	c.Drain()
	if c.Len() != 0 {
		t.Errorf("cache holds %d buffers after drain, want 0", c.Len())
	}
	pool.mu.Lock()
	pooled := len(pool.bufs[size])
	pool.mu.Unlock()
	if pooled != 2 {
		t.Errorf("global pool has %d buffers after drain, want 2", pooled)
	}
}

// TestCacheRoundsUpToPages: Cache.New matches New's page rounding, so
// cache-served and pool-served memories are interchangeable.
func TestCacheRoundsUpToPages(t *testing.T) {
	c := NewCache()
	m := c.New(vax.PageSize + 1)
	if m.Size() != 2*vax.PageSize {
		t.Errorf("got %d bytes, want %d", m.Size(), 2*vax.PageSize)
	}
	if m2 := c.New(0); m2.Size() != vax.PageSize {
		t.Errorf("zero-size request got %d bytes, want one page", m2.Size())
	}
}
