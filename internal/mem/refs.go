package mem

import "sync/atomic"

// PageRefs tracks how many VMs reference each physical page frame, the
// bookkeeping behind copy-on-write cloning. A count of 0 or 1 means the
// frame is exclusively owned (0 is the common case: frames of VMs that
// have never been cloned are not tracked at all); a count above 1 means
// the frame backs more than one VM and must not be written in place.
//
// Counts are atomics because COW breaks run concurrently on the
// parallel engine's worker shards: two clones of the same source can
// break the same shared frame at the same time, and each must observe
// the other's decrement. The slice itself is sized once at VMM
// construction (one counter per physical frame, four bytes each) and
// never grows, so readers need no lock.
type PageRefs struct {
	counts []atomic.Uint32
}

// NewPageRefs builds a refcount table covering pages frames.
func NewPageRefs(pages uint32) *PageRefs {
	return &PageRefs{counts: make([]atomic.Uint32, pages)}
}

// Shared reports whether frame pfn backs more than one VM. A write to a
// shared frame must COW-break first.
func (r *PageRefs) Shared(pfn uint32) bool {
	return r.counts[pfn].Load() > 1
}

// Refs returns the current count for frame pfn (0 = untracked).
func (r *PageRefs) Refs(pfn uint32) uint32 {
	return r.counts[pfn].Load()
}

// Share records one more reference to frame pfn. An untracked frame
// (count 0) becomes shared between its existing owner and the new
// reference, so the count jumps to 2.
func (r *PageRefs) Share(pfn uint32) {
	if r.counts[pfn].CompareAndSwap(0, 2) {
		return
	}
	r.counts[pfn].Add(1)
}

// Drop releases one reference to frame pfn and reports whether the
// caller was the last holder (count reached zero — the frame is free to
// recycle). Dropping an untracked frame reports true without touching
// the counter.
func (r *PageRefs) Drop(pfn uint32) bool {
	for {
		n := r.counts[pfn].Load()
		if n == 0 {
			return true
		}
		if r.counts[pfn].CompareAndSwap(n, n-1) {
			return n == 1
		}
	}
}
