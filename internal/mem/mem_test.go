package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/vax"
)

func TestSizesRoundUpToPages(t *testing.T) {
	m := New(1)
	if m.Size() != vax.PageSize || m.Pages() != 1 {
		t.Errorf("size %d pages %d", m.Size(), m.Pages())
	}
	m = New(0)
	if m.Pages() != 1 {
		t.Error("zero-size memory should still have one page")
	}
	m = New(3 * vax.PageSize)
	if m.Pages() != 3 {
		t.Errorf("pages = %d, want 3", m.Pages())
	}
}

func TestByteWordLongRoundTrip(t *testing.T) {
	m := New(4096)
	if err := m.StoreByte(10, 0xAB); err != nil {
		t.Fatal(err)
	}
	if b, _ := m.LoadByte(10); b != 0xAB {
		t.Errorf("byte = %#x", b)
	}
	if err := m.StoreWord(100, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if w, _ := m.LoadWord(100); w != 0xBEEF {
		t.Errorf("word = %#x", w)
	}
	if err := m.StoreLong(200, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if l, _ := m.LoadLong(200); l != 0xDEADBEEF {
		t.Errorf("long = %#x", l)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New(4096)
	if err := m.StoreLong(0, 0x04030201); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4; i++ {
		b, _ := m.LoadByte(i)
		if b != byte(i+1) {
			t.Errorf("byte %d = %#x, want %#x", i, b, i+1)
		}
	}
	w, _ := m.LoadWord(1)
	if w != 0x0302 {
		t.Errorf("unaligned word = %#x", w)
	}
}

func TestBusErrors(t *testing.T) {
	m := New(vax.PageSize)
	if _, err := m.LoadLong(vax.PageSize - 2); err == nil {
		t.Error("straddling read should bus-error")
	}
	if err := m.StoreLong(vax.PageSize, 1); err == nil {
		t.Error("out of range write should bus-error")
	}
	var be *BusError
	_, err := m.LoadByte(1 << 30)
	if b, ok := err.(*BusError); !ok {
		t.Fatalf("want BusError, got %v", err)
	} else {
		be = b
	}
	if be.Write || be.Addr != 1<<30 || be.Error() == "" {
		t.Errorf("bad bus error: %+v", be)
	}
	err = m.StoreByte(1<<30, 0)
	if b, ok := err.(*BusError); !ok || !b.Write {
		t.Errorf("write bus error misreported: %v", err)
	}
}

func TestBytesAndZeroPage(t *testing.T) {
	m := New(2 * vax.PageSize)
	src := []byte{1, 2, 3, 4, 5}
	if err := m.StoreBytes(vax.PageSize, src); err != nil {
		t.Fatal(err)
	}
	got, err := m.LoadBytes(vax.PageSize, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
	// LoadBytes must return a copy.
	got[0] = 99
	b, _ := m.LoadByte(vax.PageSize)
	if b != 1 {
		t.Error("LoadBytes aliases memory")
	}
	if err := m.ZeroPage(1); err != nil {
		t.Fatal(err)
	}
	b, _ = m.LoadByte(vax.PageSize)
	if b != 0 {
		t.Error("ZeroPage did not clear")
	}
	if err := m.ZeroPage(2); err == nil {
		t.Error("ZeroPage past end should fail")
	}
	if err := m.StoreBytes(2*vax.PageSize-2, src); err == nil {
		t.Error("StoreBytes straddling end should fail")
	}
	if _, err := m.LoadBytes(2*vax.PageSize-2, 5); err == nil {
		t.Error("LoadBytes straddling end should fail")
	}
}

// TestLongRoundTripProperty: any longword written within bounds reads
// back identically, and neighbouring longwords are undisturbed.
func TestLongRoundTripProperty(t *testing.T) {
	m := New(64 * 1024)
	f := func(addr uint32, v uint32) bool {
		addr = (addr % (m.Size() - 12)) + 4
		before, _ := m.LoadLong(addr - 4)
		if err := m.StoreLong(addr, v); err != nil {
			return false
		}
		got, _ := m.LoadLong(addr)
		after, _ := m.LoadLong(addr - 4)
		return got == v && before == after
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	m := New(vax.PageSize)
	if !m.Contains(0, vax.PageSize) {
		t.Error("whole memory should be contained")
	}
	if m.Contains(0, vax.PageSize+1) {
		t.Error("size+1 must not be contained")
	}
	if m.Contains(0xFFFFFFFF, 4) {
		t.Error("wraparound must not be contained")
	}
}

func TestFillLong(t *testing.T) {
	m := New(2 * vax.PageSize)
	if err := m.FillLong(8, 100, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		if v, _ := m.LoadLong(8 + 4*i); v != 0xDEADBEEF {
			t.Fatalf("longword %d = %#x", i, v)
		}
	}
	if v, _ := m.LoadLong(4); v != 0 {
		t.Error("FillLong wrote before its range")
	}
	if v, _ := m.LoadLong(8 + 400); v != 0 {
		t.Error("FillLong wrote past its range")
	}
	if err := m.FillLong(2, 1, 1); err == nil {
		t.Error("unaligned FillLong must fail")
	}
	if err := m.FillLong(2*vax.PageSize-4, 2, 1); err == nil {
		t.Error("out-of-range FillLong must fail")
	}
	if err := m.FillLong(0, 0, 1); err != nil {
		t.Error("zero-length FillLong must be a no-op")
	}
}

func TestReleaseRecyclesZeroed(t *testing.T) {
	// The pool invariant: buffers enter the pool fully zeroed, so a
	// recycled Memory is indistinguishable from a fresh one.
	const size = 64 * 1024
	m := New(size)
	if err := m.StoreLong(0x1000, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	m.Release(size)
	if _, err := m.LoadLong(0); err == nil {
		t.Error("released memory must be inaccessible")
	}
	m.Release(size) // idempotent

	m2 := New(size)
	for _, addr := range []uint32{0, 0x1000, size - 4} {
		if v, err := m2.LoadLong(addr); err != nil || v != 0 {
			t.Fatalf("recycled memory not zero at %#x: %#x %v", addr, v, err)
		}
	}
}

func TestReleaseHonorsDirtyExtent(t *testing.T) {
	// A caller that only dirtied a prefix may declare it; the tail was
	// never written and stays zero by induction.
	const size = 32 * 1024
	m := New(size)
	if err := m.StoreLong(0x100, 0xABCD); err != nil {
		t.Fatal(err)
	}
	m.Release(0x200)
	m2 := New(size)
	if v, _ := m2.LoadLong(0x100); v != 0 {
		t.Error("declared-dirty prefix not cleared")
	}
}
