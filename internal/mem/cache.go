package mem

import "repro/internal/vax"

// Cache is a goroutine-confined front for the global backing-store
// pool. The parallel experiment harness boots and discards whole
// fleets of machines from concurrent workers; routing every New and
// Release through the global pool's mutex would serialize exactly the
// path the workers hammer. A worker that owns a Cache recycles buffers
// locally — in steady state (boot, run, release, boot the next VM of
// the same size) neither New nor Release takes any lock at all. The
// cache preserves the pool's zeroing invariant: every buffer it holds
// is fully zero, because buffers only enter it through Release, which
// zeroes the declared dirty extent, or from the global pool, which
// maintains the same invariant.
//
// A Cache must only be used from one goroutine at a time. Callers that
// are done with it should Drain it so the buffers return to the global
// pool for other workers.
type Cache struct {
	bufs map[uint32][][]byte
}

// cacheMaxPerSize bounds how many buffers of one size a single cache
// retains; extras spill to the global pool on Release.
const cacheMaxPerSize = 2

// cacheRefillBatch is how many buffers New takes from the global pool
// on a local miss: one to return, the rest stashed so the next miss of
// the same size is local.
const cacheRefillBatch = 2

// NewCache creates an empty cache.
func NewCache() *Cache {
	return &Cache{bufs: make(map[uint32][][]byte)}
}

// New creates a memory of the given size (rounded up to whole pages),
// serving from the local cache when possible and batch-refilling from
// the global pool otherwise.
func (c *Cache) New(size uint32) *Memory {
	pages := (size + vax.PageSize - 1) / vax.PageSize
	if pages == 0 {
		pages = 1
	}
	size = pages * vax.PageSize
	if bufs := c.bufs[size]; len(bufs) > 0 {
		buf := bufs[len(bufs)-1]
		c.bufs[size] = bufs[:len(bufs)-1]
		return &Memory{data: buf}
	}
	// Local miss: one trip to the global pool for a batch.
	var got [][]byte
	pool.mu.Lock()
	if bufs := pool.bufs[size]; len(bufs) > 0 {
		n := cacheRefillBatch
		if n > len(bufs) {
			n = len(bufs)
		}
		got = append(got, bufs[len(bufs)-n:]...)
		pool.bufs[size] = bufs[:len(bufs)-n]
	}
	pool.mu.Unlock()
	if len(got) == 0 {
		return &Memory{data: make([]byte, size)}
	}
	buf := got[len(got)-1]
	if len(got) > 1 {
		c.bufs[size] = append(c.bufs[size], got[:len(got)-1]...)
	}
	return &Memory{data: buf}
}

// Release returns the memory's backing store to the cache, zeroing the
// first dirty bytes — the same contract as Memory.Release, including
// the caller's obligation to declare an honest dirty extent. Buffers
// beyond the local bound spill to the global pool.
func (c *Cache) Release(m *Memory, dirty uint32) {
	buf := m.data
	if buf == nil {
		return
	}
	m.data = nil
	if dirty > uint32(len(buf)) {
		dirty = uint32(len(buf))
	}
	clear(buf[:dirty])
	size := uint32(len(buf))
	if len(c.bufs[size]) < cacheMaxPerSize {
		c.bufs[size] = append(c.bufs[size], buf)
		return
	}
	pool.mu.Lock()
	if len(pool.bufs[size]) < poolMaxPerSize {
		pool.bufs[size] = append(pool.bufs[size], buf)
	}
	pool.mu.Unlock()
}

// Drain moves every cached buffer to the global pool (respecting its
// per-size bound) and empties the cache.
func (c *Cache) Drain() {
	pool.mu.Lock()
	for size, bufs := range c.bufs {
		for _, buf := range bufs {
			if len(pool.bufs[size]) < poolMaxPerSize {
				pool.bufs[size] = append(pool.bufs[size], buf)
			}
		}
		delete(c.bufs, size)
	}
	pool.mu.Unlock()
}

// Len reports how many buffers the cache currently holds (test hook).
func (c *Cache) Len() int {
	n := 0
	for _, bufs := range c.bufs {
		n += len(bufs)
	}
	return n
}
