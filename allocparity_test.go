package repro

import (
	"runtime/debug"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/vmos"
	"repro/internal/workload"
)

// TestExperimentAllocParity pins the end-to-end allocation counts of
// the serial benchmark experiments. These are the numbers ci.sh's
// bench diff gates on (allocs_per_op in BENCH_*.json); asserting them
// here catches an accidental allocation on a serial path — a lazily
// grown allocator cache, a closure that escapes — at test time rather
// than at the next benchmark refresh. The parallel engine is allowed
// to allocate (worker shards, queues, pprof labels); the serial paths
// these experiments drive are not.
func TestExperimentAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	if testing.Short() {
		t.Skip("E9 runs the cost-sensitivity sweep (~60ms per run)")
	}
	// A GC pass between the warm-up and measured runs empties the
	// sync.Pool-backed allocator caches and shows up as a spurious +1 in
	// any experiment; hold GC off so the pins are deterministic.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Go maps hash with a per-map random seed, so an unlucky seed in the
	// assembler's symbol tables allocates an extra overflow bucket or
	// two. The noise is strictly additive: the minimum over a few
	// attempts is the deterministic count the pin asserts.
	minAllocs := func(want float64, f func()) float64 {
		got := testing.AllocsPerRun(1, f)
		for attempt := 0; got > want && attempt < 4; attempt++ {
			if g := testing.AllocsPerRun(1, f); g < got {
				got = g
			}
		}
		return got
	}
	// The counts dropped from the 2026-08-05 baseline (256/295/574) by
	// exactly one per VM created: the per-VM wake channel became two
	// padded atomics when the M:N scheduler replaced per-VM goroutines.
	for _, tc := range []struct {
		id   string
		want float64
	}{
		{"E2", 252},
		{"E3", 290},
		{"E9", 565},
	} {
		spec, ok := exp.ByID(tc.id)
		if !ok {
			t.Fatalf("unknown experiment %s", tc.id)
		}
		got := minAllocs(tc.want, func() {
			if _, err := spec.Run(); err != nil {
				t.Fatal(err)
			}
		})
		if got != tc.want {
			t.Errorf("%s allocates %.0f times per run, want exactly %.0f", tc.id, got, tc.want)
		}
	}
}

// TestSupervisorAllocParity pins the cost of *arming* the recovery
// supervisor: a healthy serial machine run with Recover enabled (but no
// faults and no checkpoint interval) must allocate exactly as many
// times as the same run with the supervisor off. The halt-loop in Run,
// the pendingRecover checks, and the checkpoint-policy gate are all on
// hot paths; this catches any of them growing an allocation.
func TestSupervisorAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	run := func(cfg core.Config) func() {
		return func() {
			im, err := vmos.Build(vmos.Config{Target: vmos.TargetVM, Processes: workload.Mix(6, 3, 8)})
			if err != nil {
				t.Fatal(err)
			}
			cfg.FillBatch = 1
			k := core.New(16<<20, cfg)
			if _, err := vmos.BootVM(k, im, 64); err != nil {
				t.Fatal(err)
			}
			k.Run(0)
			k.Release()
		}
	}
	// Min-of-N for the same reason as TestExperimentAllocParity: map
	// hash-seed noise is additive, the minimum is the true count.
	min4 := func(f func()) float64 {
		got := testing.AllocsPerRun(1, f)
		for attempt := 0; attempt < 3; attempt++ {
			if g := testing.AllocsPerRun(1, f); g < got {
				got = g
			}
		}
		return got
	}
	base := min4(run(core.Config{}))
	armed := min4(run(core.Config{Recover: true, RecoverBudget: 4}))
	if armed != base {
		t.Errorf("armed supervisor allocates %.0f times per run, plain machine %.0f; arming must be free", armed, base)
	}
}
