package repro

import (
	"testing"

	"repro/internal/exp"
)

// TestExperimentAllocParity pins the end-to-end allocation counts of
// the serial benchmark experiments. These are the numbers ci.sh's
// bench diff gates on (allocs_per_op in BENCH_*.json); asserting them
// here catches an accidental allocation on a serial path — a lazily
// grown allocator cache, a closure that escapes — at test time rather
// than at the next benchmark refresh. The parallel engine is allowed
// to allocate (worker shards, queues, pprof labels); the serial paths
// these experiments drive are not.
func TestExperimentAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	if testing.Short() {
		t.Skip("E9 runs the cost-sensitivity sweep (~60ms per run)")
	}
	// The counts dropped from the 2026-08-05 baseline (256/295/574) by
	// exactly one per VM created: the per-VM wake channel became two
	// padded atomics when the M:N scheduler replaced per-VM goroutines.
	for _, tc := range []struct {
		id   string
		want float64
	}{
		{"E2", 252},
		{"E3", 290},
		{"E9", 565},
	} {
		spec, ok := exp.ByID(tc.id)
		if !ok {
			t.Fatalf("unknown experiment %s", tc.id)
		}
		got := testing.AllocsPerRun(1, func() {
			if _, err := spec.Run(); err != nil {
				t.Fatal(err)
			}
		})
		if got != tc.want {
			t.Errorf("%s allocates %.0f times per run, want exactly %.0f", tc.id, got, tc.want)
		}
	}
}
